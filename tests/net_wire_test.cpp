// The dic::net wire codec, exercised entirely on byte buffers — no
// sockets: rich round-trips, the streamed-report reassembly contract,
// and the malformed-input hardening the session layer depends on (a
// hostile or truncated frame must decode to a clean failure, never an
// over-read or a crash).
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "net/wire.hpp"

namespace {

using namespace dic;
using namespace dic::net;

report::Violation makeViolation(int i) {
  report::Violation v;
  v.category = static_cast<report::Category>(
      i % (static_cast<int>(report::Category::kOther) + 1));
  v.severity = static_cast<report::Severity>(i % 3);
  v.rule = "S.ND.RULE" + std::to_string(i);
  v.where = {{i * 10, -i * 3}, {i * 10 + 7, -i * 3 + 5}};
  v.cell = "cell" + std::to_string(i % 4);
  v.message = "violation #" + std::to_string(i);
  v.layerA = i % 5;
  v.layerB = (i % 7) - 1;
  return v;
}

CheckResult makeResult(std::size_t violations) {
  CheckResult r;
  r.kind = CheckKind::kHierarchicalDrc;
  r.root = 3;
  r.viewCacheHit = true;
  r.incrementalHit = true;
  r.revision = 17;
  r.seconds = 0.04125;
  r.tag = "tag-x";
  for (std::size_t i = 0; i < violations; ++i)
    r.report.add(makeViolation(static_cast<int>(i)));
  return r;
}

/// Parse the header of a full frame and return (header, payload span).
FrameHeader splitFrame(const std::vector<std::uint8_t>& frame,
                       const std::uint8_t** payload, std::size_t* n) {
  FrameHeader h;
  std::string err;
  EXPECT_GE(frame.size(), kHeaderSize);
  EXPECT_TRUE(parseHeader(frame.data(), h, &err)) << err;
  EXPECT_EQ(frame.size(), kHeaderSize + h.payloadLen);
  *payload = frame.data() + kHeaderSize;
  *n = h.payloadLen;
  return h;
}

/// Compare everything a result envelope carries (reports via text()).
void expectResultEq(const CheckResult& a, const CheckResult& b) {
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.root, b.root);
  EXPECT_EQ(a.viewCacheHit, b.viewCacheHit);
  EXPECT_EQ(a.netlistCacheHit, b.netlistCacheHit);
  EXPECT_EQ(a.incrementalHit, b.incrementalHit);
  EXPECT_EQ(a.revision, b.revision);
  EXPECT_DOUBLE_EQ(a.seconds, b.seconds);
  EXPECT_EQ(a.tag, b.tag);
  EXPECT_EQ(a.error, b.error);
  EXPECT_EQ(a.report.text(), b.report.text());
}

TEST(NetWire, HeaderRoundTrip) {
  std::vector<std::uint8_t> buf;
  appendHeader(buf, FrameType::kReportPart, 0xDEADBEEFCAFEBABEull, 12345);
  ASSERT_EQ(buf.size(), kHeaderSize);
  FrameHeader h;
  std::string err;
  ASSERT_TRUE(parseHeader(buf.data(), h, &err)) << err;
  EXPECT_EQ(h.magic, kMagic);
  EXPECT_EQ(h.version, kVersion);
  EXPECT_EQ(h.type, FrameType::kReportPart);
  EXPECT_EQ(h.flags, 0);
  EXPECT_EQ(h.requestId, 0xDEADBEEFCAFEBABEull);
  EXPECT_EQ(h.payloadLen, 12345u);
}

TEST(NetWire, CheckFrameRoundTripRich) {
  CheckRequest req;
  req.kind = CheckKind::kErc;
  req.root = 42;
  req.metric = geom::Metric::kOrthogonal;
  req.checkDevices = false;
  req.hierarchicalInteractions = true;
  req.useNetInformation = false;
  req.instantiateViolations = true;
  req.baselineWidth = false;
  req.baselineSpacing = true;
  req.baselineContacts = false;
  req.erc.checkDanglingNets = false;
  req.erc.checkPowerGroundShort = true;
  req.erc.checkBusRules = false;
  req.erc.checkDepletionToGround = true;
  req.extract.mergeByLabel = false;
  req.extract.globalPrefixes = {"VDD", "GND", "PHI"};
  req.threads = 3;
  req.tag = "req-77";

  layout::Element wire;
  wire.kind = layout::ElementKind::kWire;
  wire.layer = 2;
  wire.net = "VDD";
  wire.box = {{0, 0}, {100, 4}};
  wire.path = {{0, 2}, {50, 2}, {50, 40}, {100, 40}};
  wire.wireWidth = 4;
  req.edits.push_back(EditOp::setElement(7, 11, wire));

  EditOp add;
  add.kind = EditOp::Kind::kAddInstance;
  add.cell = 5;
  add.index = 0;
  add.instance.cell = 9;
  add.instance.transform.orient = geom::Orient::kMY90;
  add.instance.transform.t = {-1234, 5678};
  add.instance.name = "u42";
  req.edits.push_back(add);

  const std::vector<std::uint8_t> frame =
      encodeCheckFrame(99, "libA", req);
  const std::uint8_t* p = nullptr;
  std::size_t n = 0;
  const FrameHeader h = splitFrame(frame, &p, &n);
  EXPECT_EQ(h.type, FrameType::kCheck);
  EXPECT_EQ(h.requestId, 99u);

  std::string lib;
  CheckRequest got;
  std::string err;
  ASSERT_TRUE(decodeCheckPayload(p, n, lib, got, &err)) << err;
  EXPECT_EQ(lib, "libA");
  EXPECT_EQ(got.kind, req.kind);
  EXPECT_EQ(got.root, req.root);
  EXPECT_EQ(got.metric, req.metric);
  EXPECT_EQ(got.checkDevices, req.checkDevices);
  EXPECT_EQ(got.hierarchicalInteractions, req.hierarchicalInteractions);
  EXPECT_EQ(got.useNetInformation, req.useNetInformation);
  EXPECT_EQ(got.instantiateViolations, req.instantiateViolations);
  EXPECT_EQ(got.baselineWidth, req.baselineWidth);
  EXPECT_EQ(got.baselineSpacing, req.baselineSpacing);
  EXPECT_EQ(got.baselineContacts, req.baselineContacts);
  EXPECT_EQ(got.erc.checkDanglingNets, req.erc.checkDanglingNets);
  EXPECT_EQ(got.erc.checkPowerGroundShort, req.erc.checkPowerGroundShort);
  EXPECT_EQ(got.erc.checkBusRules, req.erc.checkBusRules);
  EXPECT_EQ(got.erc.checkDepletionToGround, req.erc.checkDepletionToGround);
  EXPECT_EQ(got.extract.mergeByLabel, req.extract.mergeByLabel);
  EXPECT_EQ(got.extract.globalPrefixes, req.extract.globalPrefixes);
  EXPECT_EQ(got.threads, req.threads);
  EXPECT_EQ(got.tag, req.tag);
  ASSERT_EQ(got.edits.size(), 2u);
  EXPECT_EQ(got.edits[0].kind, EditOp::Kind::kSetElement);
  EXPECT_EQ(got.edits[0].cell, 7);
  EXPECT_EQ(got.edits[0].index, 11u);
  EXPECT_EQ(got.edits[0].element.kind, layout::ElementKind::kWire);
  EXPECT_EQ(got.edits[0].element.net, "VDD");
  EXPECT_EQ(got.edits[0].element.path.size(), 4u);
  EXPECT_EQ(got.edits[0].element.path[2].y, 40);
  EXPECT_EQ(got.edits[0].element.wireWidth, 4);
  EXPECT_EQ(got.edits[1].kind, EditOp::Kind::kAddInstance);
  EXPECT_EQ(got.edits[1].instance.cell, 9);
  EXPECT_EQ(got.edits[1].instance.transform.orient, geom::Orient::kMY90);
  EXPECT_EQ(got.edits[1].instance.transform.t.x, -1234);
  EXPECT_EQ(got.edits[1].instance.name, "u42");
}

TEST(NetWire, StatsRoundTrip) {
  server::ServerStats st;
  for (int s = 0; s < 3; ++s) {
    server::ShardStats sh;
    sh.libraries = static_cast<std::size_t>(s + 1);
    sh.replicas = static_cast<std::size_t>(2 - s);
    sh.queueDepth = static_cast<std::size_t>(s * 7);
    sh.submitted = 100u + static_cast<std::size_t>(s);
    sh.served = 90u + static_cast<std::size_t>(s);
    sh.rejected = static_cast<std::size_t>(s);
    sh.failed = 2;
    sh.p50Seconds = 0.001 * (s + 1);
    sh.p95Seconds = 0.005 * (s + 1);
    sh.meanQueueWaitSeconds = 0.0002;
    sh.meanServiceSeconds = 0.0042;
    sh.cacheBytes = 1u << (10 + s);
    for (int l = 0; l < s; ++l) {  // shard 0: none; shard 2: two
      server::LibraryHeat heat;
      heat.id = "lib" + std::to_string(l);
      heat.served = 10u * static_cast<std::size_t>(l + 1);
      heat.rejected = static_cast<std::size_t>(l);
      heat.bytes = 1000u + static_cast<std::uint64_t>(l);
      heat.p95Seconds = 0.003 * (l + 1);
      heat.ownerShard = s;
      if (l == 1) heat.replicaShards = {0, 2};  // one replicated library
      sh.heat.push_back(heat);
    }
    st.shards.push_back(sh);
  }
  const std::vector<std::uint8_t> frame = encodeStatsFrame(5, st);
  const std::uint8_t* p = nullptr;
  std::size_t n = 0;
  const FrameHeader h = splitFrame(frame, &p, &n);
  EXPECT_EQ(h.type, FrameType::kStats);
  server::ServerStats got;
  std::string err;
  ASSERT_TRUE(decodeStatsPayload(p, n, got, &err)) << err;
  ASSERT_EQ(got.shards.size(), 3u);
  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_EQ(got.shards[s].libraries, st.shards[s].libraries);
    EXPECT_EQ(got.shards[s].replicas, st.shards[s].replicas);
    EXPECT_EQ(got.shards[s].queueDepth, st.shards[s].queueDepth);
    EXPECT_EQ(got.shards[s].submitted, st.shards[s].submitted);
    EXPECT_EQ(got.shards[s].served, st.shards[s].served);
    EXPECT_EQ(got.shards[s].rejected, st.shards[s].rejected);
    EXPECT_EQ(got.shards[s].failed, st.shards[s].failed);
    EXPECT_DOUBLE_EQ(got.shards[s].p50Seconds, st.shards[s].p50Seconds);
    EXPECT_DOUBLE_EQ(got.shards[s].p95Seconds, st.shards[s].p95Seconds);
    EXPECT_EQ(got.shards[s].cacheBytes, st.shards[s].cacheBytes);
    ASSERT_EQ(got.shards[s].heat.size(), st.shards[s].heat.size());
    for (std::size_t l = 0; l < got.shards[s].heat.size(); ++l) {
      EXPECT_EQ(got.shards[s].heat[l].id, st.shards[s].heat[l].id);
      EXPECT_EQ(got.shards[s].heat[l].served, st.shards[s].heat[l].served);
      EXPECT_EQ(got.shards[s].heat[l].rejected, st.shards[s].heat[l].rejected);
      EXPECT_EQ(got.shards[s].heat[l].bytes, st.shards[s].heat[l].bytes);
      EXPECT_DOUBLE_EQ(got.shards[s].heat[l].p95Seconds,
                       st.shards[s].heat[l].p95Seconds);
      EXPECT_EQ(got.shards[s].heat[l].ownerShard,
                st.shards[s].heat[l].ownerShard);
      EXPECT_EQ(got.shards[s].heat[l].replicaShards,
                st.shards[s].heat[l].replicaShards);
    }
  }
}

TEST(NetWire, ErrorFrameRoundTrip) {
  for (const std::string& msg : {std::string("bad magic"), std::string()}) {
    const std::vector<std::uint8_t> frame = encodeErrorFrame(8, msg);
    const std::uint8_t* p = nullptr;
    std::size_t n = 0;
    const FrameHeader h = splitFrame(frame, &p, &n);
    EXPECT_EQ(h.type, FrameType::kError);
    EXPECT_EQ(decodeErrorPayload(p, n), msg);
  }
}

TEST(NetWire, SingleFrameResultRoundTrip) {
  const CheckResult r = makeResult(3);
  ResultFrameStream stream(21, r, /*chunkViolations=*/8);
  std::vector<std::uint8_t> frame;
  ASSERT_TRUE(stream.next(frame));
  const std::uint8_t* p = nullptr;
  std::size_t n = 0;
  const FrameHeader h = splitFrame(frame, &p, &n);
  EXPECT_EQ(h.type, FrameType::kResult);
  EXPECT_EQ(h.requestId, 21u);
  ASSERT_FALSE(stream.next(frame));  // single-frame sequence

  ResultAssembler as;
  CheckResult got;
  std::string err;
  ASSERT_EQ(as.feed(h, p, n, got, &err), ResultAssembler::Feed::kComplete)
      << err;
  expectResultEq(got, r);
}

TEST(NetWire, RejectedFrameCarriesNoViolations) {
  CheckResult r = makeResult(5);  // violations must NOT cross the wire
  r.error = server::kErrQueueFull;
  ResultFrameStream stream(4, r, /*chunkViolations=*/1);
  std::vector<std::uint8_t> frame;
  ASSERT_TRUE(stream.next(frame));
  ASSERT_FALSE(stream.next(frame));  // one frame even though 5 > chunk
  const std::uint8_t* p = nullptr;
  std::size_t n = 0;
  const FrameHeader h = splitFrame(frame, &p, &n);
  EXPECT_EQ(h.type, FrameType::kRejected);

  ResultAssembler as;
  CheckResult got;
  std::string err;
  ASSERT_EQ(as.feed(h, p, n, got, &err), ResultAssembler::Feed::kComplete)
      << err;
  EXPECT_EQ(got.error, server::kErrQueueFull);
  EXPECT_TRUE(got.report.empty());
}

TEST(NetWire, StreamingChunksAndReassembly) {
  const CheckResult r = makeResult(10);
  ResultFrameStream stream(33, r, /*chunkViolations=*/3);
  ResultAssembler as;
  CheckResult got;
  std::string err;
  std::vector<std::uint8_t> frame;
  std::size_t parts = 0;
  bool complete = false;
  while (stream.next(frame)) {
    const std::uint8_t* p = nullptr;
    std::size_t n = 0;
    const FrameHeader h = splitFrame(frame, &p, &n);
    ASSERT_FALSE(complete);  // nothing after the end frame
    const ResultAssembler::Feed fed = as.feed(h, p, n, got, &err);
    if (h.type == FrameType::kReportPart) {
      ++parts;
      EXPECT_EQ(fed, ResultAssembler::Feed::kNeedMore) << err;
      EXPECT_TRUE(as.streaming());
    } else {
      EXPECT_EQ(h.type, FrameType::kReportEnd);
      ASSERT_EQ(fed, ResultAssembler::Feed::kComplete) << err;
      complete = true;
    }
  }
  EXPECT_TRUE(complete);
  EXPECT_EQ(parts, 4u);  // 3+3+3+1
  EXPECT_FALSE(as.streaming());
  expectResultEq(got, r);
}

TEST(NetWire, HeaderRejectsBadMagicVersionFlagsType) {
  std::vector<std::uint8_t> good;
  appendHeader(good, FrameType::kCheck, 1, 0);
  FrameHeader h;
  ASSERT_TRUE(parseHeader(good.data(), h));

  auto corrupt = [&](std::size_t offset, std::uint8_t value) {
    std::vector<std::uint8_t> bad = good;
    bad[offset] = value;
    std::string err;
    EXPECT_FALSE(parseHeader(bad.data(), h, &err));
    EXPECT_FALSE(err.empty());
  };
  corrupt(0, 'X');               // magic
  corrupt(4, kVersion + 1);      // version
  corrupt(5, 0);                 // type 0 unknown
  corrupt(5, 5);                 // gap between requests and responses
  corrupt(5, 15);                // still in the gap
  corrupt(5, 24);                // past kMetrics
  corrupt(6, 1);                 // reserved flags must be zero

  // The version-2 frame types are all known to the parser.
  for (const FrameType t : {FrameType::kTraceRequest, FrameType::kMetricsRequest,
                            FrameType::kTrace, FrameType::kMetrics}) {
    std::vector<std::uint8_t> buf;
    appendHeader(buf, t, 1, 0);
    std::string err;
    EXPECT_TRUE(parseHeader(buf.data(), h, &err)) << err;
    EXPECT_EQ(h.type, t);
  }
}

TEST(NetWire, HeaderRejectsOversizedPayloadLength) {
  std::vector<std::uint8_t> buf;
  appendHeader(buf, FrameType::kCheck, 1, 0);
  const std::uint32_t big = kMaxPayload + 1;
  std::memcpy(buf.data() + 16, &big, 4);  // little-endian host in CI
  FrameHeader h;
  std::string err;
  EXPECT_FALSE(parseHeader(buf.data(), h, &err));
  EXPECT_EQ(err, "oversized payload length");
}

TEST(NetWire, TruncatedCheckPayloadPrefixSweep) {
  CheckRequest req = CheckRequest::drc(3);
  req.extract.globalPrefixes = {"VDD"};
  layout::Element e;
  e.kind = layout::ElementKind::kBox;
  e.layer = 1;
  e.box = {{0, 0}, {10, 10}};
  req.edits.push_back(EditOp::setElement(2, 0, e));
  req.tag = "t";
  const std::vector<std::uint8_t> frame = encodeCheckFrame(1, "lib0", req);
  const std::uint8_t* p = frame.data() + kHeaderSize;
  const std::size_t n = frame.size() - kHeaderSize;

  std::string lib;
  CheckRequest got;
  ASSERT_TRUE(decodeCheckPayload(p, n, lib, got));
  for (std::size_t cut = 0; cut < n; ++cut)
    EXPECT_FALSE(decodeCheckPayload(p, cut, lib, got))
        << "prefix of " << cut << " bytes decoded";
}

TEST(NetWire, TruncatedResultPayloadPrefixSweep) {
  const CheckResult r = makeResult(2);
  ResultFrameStream stream(6, r);
  std::vector<std::uint8_t> frame;
  ASSERT_TRUE(stream.next(frame));
  const std::uint8_t* p = nullptr;
  std::size_t n = 0;
  const FrameHeader h = splitFrame(frame, &p, &n);
  for (std::size_t cut = 0; cut < n; ++cut) {
    ResultAssembler as;  // fresh: no stream state across attempts
    CheckResult got;
    EXPECT_EQ(as.feed(h, p, cut, got, nullptr),
              ResultAssembler::Feed::kError)
        << "prefix of " << cut << " bytes assembled";
  }
}

TEST(NetWire, EditCountBombRejected) {
  const std::vector<std::uint8_t> frame =
      encodeCheckFrame(1, "lib0", CheckRequest::drc(0));
  std::vector<std::uint8_t> payload(frame.begin() + kHeaderSize, frame.end());
  // Layout tail: ... u32 editCount, then u32 tag length (empty tag).
  ASSERT_GE(payload.size(), 8u);
  for (std::size_t i = payload.size() - 8; i < payload.size() - 4; ++i)
    payload[i] = 0xFF;
  std::string lib, err;
  CheckRequest got;
  EXPECT_FALSE(
      decodeCheckPayload(payload.data(), payload.size(), lib, got, &err));
  EXPECT_EQ(err, "bad edit count");
}

TEST(NetWire, ViolationCountBombRejected) {
  CheckResult r;  // honest envelope, hostile count
  std::vector<std::uint8_t> payload;
  appendResultEnvelope(payload, r, /*totalViolations=*/0x40000000u);
  for (int i = 0; i < 4; ++i)
    payload.push_back(i == 3 ? 0x40 : 0x00);  // u32 count = 1 << 30
  FrameHeader h;
  h.magic = kMagic;
  h.version = kVersion;
  h.type = FrameType::kResult;
  h.requestId = 1;
  h.payloadLen = static_cast<std::uint32_t>(payload.size());
  ResultAssembler as;
  CheckResult got;
  std::string err;
  EXPECT_EQ(as.feed(h, payload.data(), payload.size(), got, &err),
            ResultAssembler::Feed::kError);
  EXPECT_EQ(err, "bad violation count");
}

TEST(NetWire, InterleavedStreamsRejected) {
  const CheckResult r = makeResult(6);
  auto partFrame = [&](std::uint64_t id) {
    ResultFrameStream stream(id, r, /*chunkViolations=*/2);
    std::vector<std::uint8_t> frame;
    EXPECT_TRUE(stream.next(frame));  // first kReportPart
    return frame;
  };
  // A second stream's part while the first is open.
  {
    ResultAssembler as;
    CheckResult got;
    for (const std::uint64_t id : {1ull, 2ull}) {
      const std::vector<std::uint8_t> frame = partFrame(id);
      const std::uint8_t* p = nullptr;
      std::size_t n = 0;
      const FrameHeader h = splitFrame(frame, &p, &n);
      std::string err;
      const ResultAssembler::Feed fed = as.feed(h, p, n, got, &err);
      if (id == 1)
        EXPECT_EQ(fed, ResultAssembler::Feed::kNeedMore);
      else
        EXPECT_EQ(fed, ResultAssembler::Feed::kError);
    }
  }
  // A whole kResult while a stream is open.
  {
    ResultAssembler as;
    CheckResult got;
    const std::vector<std::uint8_t> part = partFrame(1);
    const std::uint8_t* p = nullptr;
    std::size_t n = 0;
    FrameHeader h = splitFrame(part, &p, &n);
    ASSERT_EQ(as.feed(h, p, n, got, nullptr),
              ResultAssembler::Feed::kNeedMore);
    const CheckResult whole = makeResult(1);  // must outlive the stream
    ResultFrameStream single(1, whole);
    std::vector<std::uint8_t> frame;
    ASSERT_TRUE(single.next(frame));
    h = splitFrame(frame, &p, &n);
    EXPECT_EQ(as.feed(h, p, n, got, nullptr),
              ResultAssembler::Feed::kError);
  }
}

obs::SpanRecord makeSpan(std::uint64_t traceId, int i) {
  obs::SpanRecord s;
  s.traceId = traceId;
  s.spanId = 100u + static_cast<std::uint64_t>(i);
  s.parentId = i == 0 ? 0 : 100u;
  s.startNs = 1000u * static_cast<std::uint64_t>(i + 1);
  s.durNs = 500u + static_cast<std::uint64_t>(i);
  s.tid = static_cast<std::uint32_t>(i % 3);
  const std::string name = "section" + std::to_string(i);
  std::strncpy(s.name, name.c_str(), sizeof(s.name) - 1);
  return s;
}

TEST(NetWire, TraceRequestRoundTrip) {
  const std::vector<std::uint8_t> frame =
      encodeTraceRequestFrame(11, 0xAB54A98CEB1F0AD2ull);
  const std::uint8_t* p = nullptr;
  std::size_t n = 0;
  const FrameHeader h = splitFrame(frame, &p, &n);
  EXPECT_EQ(h.type, FrameType::kTraceRequest);
  EXPECT_EQ(h.requestId, 11u);
  std::uint64_t traceId = 0;
  std::string err;
  ASSERT_TRUE(decodeTraceRequestPayload(p, n, traceId, &err)) << err;
  EXPECT_EQ(traceId, 0xAB54A98CEB1F0AD2ull);
  EXPECT_FALSE(decodeTraceRequestPayload(p, n - 1, traceId));  // truncated
  std::vector<std::uint8_t> padded(p, p + n);
  padded.push_back(0);  // trailing byte
  EXPECT_FALSE(decodeTraceRequestPayload(padded.data(), padded.size(), traceId));
}

TEST(NetWire, MetricsRequestHasEmptyPayload) {
  const std::vector<std::uint8_t> frame = encodeMetricsRequestFrame(12);
  const std::uint8_t* p = nullptr;
  std::size_t n = 0;
  const FrameHeader h = splitFrame(frame, &p, &n);
  EXPECT_EQ(h.type, FrameType::kMetricsRequest);
  EXPECT_EQ(n, 0u);
}

TEST(NetWire, TraceFrameRoundTrip) {
  const std::uint64_t traceId = 77;
  std::vector<obs::SpanRecord> spans;
  for (int i = 0; i < 5; ++i) spans.push_back(makeSpan(traceId, i));

  const std::vector<std::uint8_t> frame = encodeTraceFrame(13, traceId, spans);
  const std::uint8_t* p = nullptr;
  std::size_t n = 0;
  const FrameHeader h = splitFrame(frame, &p, &n);
  EXPECT_EQ(h.type, FrameType::kTrace);
  EXPECT_EQ(h.requestId, 13u);

  std::uint64_t gotId = 0;
  std::vector<obs::SpanRecord> got;
  std::string err;
  ASSERT_TRUE(decodeTracePayload(p, n, gotId, got, &err)) << err;
  EXPECT_EQ(gotId, traceId);
  ASSERT_EQ(got.size(), spans.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].traceId, traceId);  // re-stamped from the payload head
    EXPECT_EQ(got[i].spanId, spans[i].spanId);
    EXPECT_EQ(got[i].parentId, spans[i].parentId);
    EXPECT_EQ(got[i].startNs, spans[i].startNs);
    EXPECT_EQ(got[i].durNs, spans[i].durNs);
    EXPECT_EQ(got[i].tid, spans[i].tid);
    EXPECT_EQ(got[i].label(), spans[i].label());
  }

  for (std::size_t cut = 0; cut < n; ++cut)
    EXPECT_FALSE(decodeTracePayload(p, cut, gotId, got))
        << "prefix of " << cut << " bytes decoded";
}

TEST(NetWire, TraceSpanCountBombRejected) {
  const std::vector<std::uint8_t> frame = encodeTraceFrame(1, 7, {});
  std::vector<std::uint8_t> payload(frame.begin() + kHeaderSize, frame.end());
  // Layout: u64 traceId, then u32 span count — make the count hostile.
  ASSERT_EQ(payload.size(), 12u);
  for (std::size_t i = 8; i < 12; ++i) payload[i] = 0xFF;
  std::uint64_t traceId = 0;
  std::vector<obs::SpanRecord> spans;
  std::string err;
  EXPECT_FALSE(
      decodeTracePayload(payload.data(), payload.size(), traceId, spans, &err));
  EXPECT_FALSE(err.empty());
}

obs::MetricsSnapshot makeSnapshot() {
  obs::Registry reg;
  reg.counter("alpha.count").add(41);
  reg.gauge("beta.depth").set(-17);
  reg.histogram("gamma.latency", {0.001, 0.01, 0.1}).observe(0.005);
  reg.histogram("gamma.latency").observe(5.0);  // overflow bucket
  return reg.snapshot();
}

TEST(NetWire, MetricsFrameRoundTrip) {
  const obs::MetricsSnapshot snap = makeSnapshot();
  const std::vector<std::uint8_t> frame = encodeMetricsFrame(14, snap);
  const std::uint8_t* p = nullptr;
  std::size_t n = 0;
  const FrameHeader h = splitFrame(frame, &p, &n);
  EXPECT_EQ(h.type, FrameType::kMetrics);

  obs::MetricsSnapshot got;
  std::string err;
  ASSERT_TRUE(decodeMetricsPayload(p, n, got, &err)) << err;
  ASSERT_EQ(got.metrics.size(), 3u);
  EXPECT_EQ(got.metrics[0].name, "alpha.count");
  EXPECT_EQ(got.metrics[0].kind, obs::MetricValue::Kind::kCounter);
  EXPECT_EQ(got.metrics[0].counter, 41u);
  EXPECT_EQ(got.metrics[1].name, "beta.depth");
  EXPECT_EQ(got.metrics[1].kind, obs::MetricValue::Kind::kGauge);
  EXPECT_EQ(got.metrics[1].gauge, -17);
  EXPECT_EQ(got.metrics[2].name, "gamma.latency");
  EXPECT_EQ(got.metrics[2].kind, obs::MetricValue::Kind::kHistogram);
  ASSERT_EQ(got.metrics[2].bounds.size(), 3u);
  EXPECT_DOUBLE_EQ(got.metrics[2].bounds[1], 0.01);
  ASSERT_EQ(got.metrics[2].buckets.size(), 4u);
  EXPECT_EQ(got.metrics[2].buckets[1], 1u);  // the 0.005 observation
  EXPECT_EQ(got.metrics[2].buckets[3], 1u);  // the 5.0 overflow

  // Deterministic: encoding the same snapshot twice is byte-identical.
  EXPECT_EQ(frame, encodeMetricsFrame(14, snap));

  for (std::size_t cut = 0; cut < n; ++cut)
    EXPECT_FALSE(decodeMetricsPayload(p, cut, got))
        << "prefix of " << cut << " bytes decoded";
}

TEST(NetWire, MetricsRejectsUnknownKindAndCountBombs) {
  const obs::MetricsSnapshot snap = makeSnapshot();
  const std::vector<std::uint8_t> frame = encodeMetricsFrame(1, snap);
  const std::vector<std::uint8_t> payload(frame.begin() + kHeaderSize,
                                          frame.end());
  obs::MetricsSnapshot got;
  std::string err;

  // Metric count bomb (leading u32).
  std::vector<std::uint8_t> bomb = payload;
  for (std::size_t i = 0; i < 4; ++i) bomb[i] = 0xFF;
  EXPECT_FALSE(decodeMetricsPayload(bomb.data(), bomb.size(), got, &err));

  // Unknown kind tag: the first metric's kind byte follows the u32
  // count, the u32 name length, and the name bytes.
  std::vector<std::uint8_t> badKind = payload;
  const std::size_t kindOff = 4 + 4 + std::strlen("alpha.count");
  badKind[kindOff] = 9;
  EXPECT_FALSE(decodeMetricsPayload(badKind.data(), badKind.size(), got, &err));

  // Trailing garbage after a well-formed snapshot.
  std::vector<std::uint8_t> padded = payload;
  padded.push_back(0);
  EXPECT_FALSE(decodeMetricsPayload(padded.data(), padded.size(), got, &err));
}

TEST(NetWire, ReportEndWithoutStreamRejected) {
  const CheckResult r = makeResult(0);
  std::vector<std::uint8_t> payload;
  appendResultEnvelope(payload, r, 0);
  FrameHeader h;
  h.magic = kMagic;
  h.version = kVersion;
  h.type = FrameType::kReportEnd;
  h.requestId = 9;
  h.payloadLen = static_cast<std::uint32_t>(payload.size());
  ResultAssembler as;
  CheckResult got;
  std::string err;
  EXPECT_EQ(as.feed(h, payload.data(), payload.size(), got, &err),
            ResultAssembler::Feed::kError);
  EXPECT_EQ(err, "report end without open stream");
}

}  // namespace
