// Tests for the technology tables (Fig. 12 interaction matrix semantics).
#include <gtest/gtest.h>

#include "tech/technology.hpp"

namespace dic::tech {
namespace {

TEST(Technology, NmosLayers) {
  const Technology t = nmos();
  EXPECT_EQ(t.lambda(), 250);
  ASSERT_TRUE(t.layerByName("diff").has_value());
  ASSERT_TRUE(t.layerByName("poly").has_value());
  ASSERT_TRUE(t.layerByName("metal").has_value());
  ASSERT_TRUE(t.layerByCifName("NM").has_value());
  EXPECT_EQ(t.layer(*t.layerByName("metal")).minWidth, 3 * 250);
  EXPECT_EQ(t.layer(*t.layerByName("poly")).minWidth, 2 * 250);
}

TEST(Technology, SpacingMatrixIsSymmetric) {
  const Technology t = nmos();
  for (int a = 0; a < t.layerCount(); ++a) {
    for (int b = 0; b < t.layerCount(); ++b) {
      EXPECT_EQ(t.spacing(a, b).diffNet, t.spacing(b, a).diffNet);
      EXPECT_EQ(t.spacing(a, b).sameNet, t.spacing(b, a).sameNet);
      EXPECT_EQ(t.spacing(a, b).related, t.spacing(b, a).related);
    }
  }
}

TEST(Technology, Fig12SubCases) {
  const Technology t = nmos();
  const int nd = *t.layerByName("diff");
  const int nm = *t.layerByName("metal");
  // Same-net spacing is usually unnecessary (Fig. 5a).
  EXPECT_EQ(t.spacing(nd, nd).forRelation(NetRelation::kSameNet), 0);
  EXPECT_EQ(t.spacing(nd, nd).forRelation(NetRelation::kDiffNet), 750);
  // "no rule between those two mask layers (as in metal and diffusion)".
  EXPECT_FALSE(t.spacing(nm, nd).any());
  // Without net information the worst case applies -- the source of
  // mask-level false errors.
  EXPECT_EQ(t.spacing(nd, nd).forRelation(NetRelation::kUnknown), 750);
}

TEST(Technology, MaxInteractionDistance) {
  const Technology t = nmos();
  EXPECT_EQ(t.maxInteractionDistance(), 750);
}

TEST(Technology, DeviceTypes) {
  const Technology t = nmos();
  ASSERT_NE(t.deviceRules("TRAN"), nullptr);
  EXPECT_EQ(t.deviceRules("TRAN")->cls, DeviceClass::kEnhancementFet);
  EXPECT_EQ(t.deviceRules("TRAN")->gateOverlap, 500);
  EXPECT_FALSE(t.deviceRules("TRAN")->contactOverGateAllowed);
  EXPECT_TRUE(t.deviceRules("BUTT")->contactOverGateAllowed);
  ASSERT_NE(t.deviceRules("DTRAN"), nullptr);
  EXPECT_EQ(t.deviceRules("DTRAN")->implantOverlap, 500);
  EXPECT_EQ(t.deviceRules("NOPE"), nullptr);
}

TEST(Technology, BipolarDeviceDependentRule) {
  const Technology t = bipolar();
  // Fig. 6: the same base-to-isolation contact is an error for a
  // transistor and legal for a resistor; the *rule* is per device type.
  ASSERT_NE(t.deviceRules("NPN"), nullptr);
  ASSERT_NE(t.deviceRules("BRES"), nullptr);
  EXPECT_FALSE(t.deviceRules("NPN")->isolationContactAllowed);
  EXPECT_TRUE(t.deviceRules("BRES")->isolationContactAllowed);
}

TEST(Technology, AddLayerGrowsMatrix) {
  Technology t("test", 100);
  const int a = t.addLayer({"a", "A", 200, true});
  const int b = t.addLayer({"b", "B", 200, true});
  t.setSpacing(a, b, {.sameNet = 0, .diffNet = 300, .related = 0});
  const int c = t.addLayer({"c", "C", 200, true});
  EXPECT_EQ(t.spacing(a, b).diffNet, 300);
  EXPECT_EQ(t.spacing(a, c).diffNet, 0);
  EXPECT_EQ(t.spacing(c, b).diffNet, 0);
}

}  // namespace
}  // namespace dic::tech
