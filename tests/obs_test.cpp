// Tests for dic::obs: span nesting and parent links across the
// work-stealing pool, ring overflow accounting, retained traces, the
// Chrome trace export, histogram bucket-edge semantics, registry kind
// safety, trace consistency across repeated Workspace runs, and the
// concurrent emission/update stress cases CI replays under TSan.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <stdexcept>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "engine/executor.hpp"
#include "net/wire.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "server/server.hpp"
#include "service/workspace.hpp"
#include "workload/generator.hpp"
#include "workload/inject.hpp"

namespace dic {
namespace {

/// Enable + clear the tracer for one test and restore the quiet default
/// on exit, so span state never leaks across test cases.
struct TracerFixture {
  TracerFixture() {
    obs::Tracer::instance().clear();
    obs::Tracer::instance().setEnabled(true);
  }
  ~TracerFixture() {
    obs::Tracer::instance().setEnabled(false);
    obs::Tracer::instance().clear();
    obs::Tracer::instance().setCapacity(65536);
  }
};

// Every test that expects spans to be recorded needs the emission
// machinery compiled in; a -DDIC_TRACING=OFF build skips them (the
// no-op stubs are still exercised by compiling the rest of the tree).
#if DIC_TRACING_ENABLED

std::vector<obs::SpanRecord> spansOf(std::uint64_t traceId) {
  return obs::Tracer::instance().collect(traceId);
}

TEST(Trace, NestedSpansShareTraceAndChainParents) {
  TracerFixture fx;
  const std::uint64_t t = obs::newTraceId();
  {
    obs::ScopedSpan root("root", t);
    obs::ScopedSpan mid("mid");
    obs::ScopedSpan leaf("leaf");
  }
  std::vector<obs::SpanRecord> spans = spansOf(t);
  ASSERT_EQ(spans.size(), 3u);
  // Spans flush innermost-first (they close in reverse nesting order).
  std::sort(spans.begin(), spans.end(),
            [](const obs::SpanRecord& a, const obs::SpanRecord& b) {
              return a.startNs < b.startNs;
            });
  EXPECT_EQ(spans[0].label(), "root");
  EXPECT_EQ(spans[1].label(), "mid");
  EXPECT_EQ(spans[2].label(), "leaf");
  EXPECT_EQ(spans[0].parentId, 0u);
  EXPECT_EQ(spans[1].parentId, spans[0].spanId);
  EXPECT_EQ(spans[2].parentId, spans[1].spanId);
  for (const obs::SpanRecord& s : spans) {
    EXPECT_EQ(s.traceId, t);
    EXPECT_GT(s.durNs, 0u);
    EXPECT_GE(spans[0].startNs + spans[0].durNs, s.startNs + s.durNs)
        << "child " << s.label() << " outlived the root";
  }
}

TEST(Trace, SpansOutsideATraceAreNotRecorded) {
  TracerFixture fx;
  { obs::ScopedSpan s("orphan"); }  // no ambient trace -> inactive
  EXPECT_TRUE(obs::Tracer::instance().snapshot().empty());
}

TEST(Trace, DisabledTracerRecordsNothing) {
  TracerFixture fx;
  obs::Tracer::instance().setEnabled(false);
  const std::uint64_t t = obs::newTraceId();
  { obs::ScopedSpan s("quiet", t); }
  EXPECT_TRUE(spansOf(t).empty());
}

TEST(Trace, NestingSurvivesParallelForSteal) {
  TracerFixture fx;
  engine::Executor exec(4);
  const std::uint64_t t = obs::newTraceId();
  constexpr std::size_t kN = 64;
  std::uint64_t rootId = 0;
  {
    obs::ScopedSpan root("fanout.root", t);
    rootId = obs::currentContext().spanId;
    exec.parallelFor(kN, [](std::size_t) {
      obs::ScopedSpan chunk("fanout.chunk");
    });
  }
  const std::vector<obs::SpanRecord> spans = spansOf(t);
  ASSERT_EQ(spans.size(), kN + 1);
  std::size_t chunks = 0;
  std::set<std::uint32_t> tids;
  for (const obs::SpanRecord& s : spans) {
    EXPECT_EQ(s.traceId, t);
    tids.insert(s.tid);
    if (s.label() == "fanout.chunk") {
      ++chunks;
      // The captured context rides the task through any steal: every
      // chunk parents on the root span no matter which thread ran it.
      EXPECT_EQ(s.parentId, rootId);
    } else {
      EXPECT_EQ(s.label(), "fanout.root");
      EXPECT_EQ(s.parentId, 0u);
    }
  }
  EXPECT_EQ(chunks, kN);
  EXPECT_GE(tids.size(), 1u);  // >1 whenever the pool actually stole
}

TEST(Trace, RingOverflowDropsOldestAndCounts) {
  TracerFixture fx;
  obs::Tracer::instance().setCapacity(64);
  const std::uint64_t t = obs::newTraceId();
  constexpr std::size_t kEmit = 200;
  for (std::size_t i = 0; i < kEmit; ++i) {
    obs::ScopedSpan s("span" + std::to_string(i), t);
  }
  const std::vector<obs::SpanRecord> spans =
      obs::Tracer::instance().snapshot();
  ASSERT_EQ(spans.size(), 64u);
  EXPECT_EQ(obs::Tracer::instance().dropped(), kEmit - 64);
  // Oldest-first snapshot of the newest 64 spans.
  EXPECT_EQ(spans.front().label(), "span" + std::to_string(kEmit - 64));
  EXPECT_EQ(spans.back().label(), "span" + std::to_string(kEmit - 1));
  obs::Tracer::instance().clear();
  EXPECT_EQ(obs::Tracer::instance().dropped(), 0u);
  EXPECT_TRUE(obs::Tracer::instance().snapshot().empty());
}

TEST(Trace, RetainedTraceSurvivesRingWrap) {
  TracerFixture fx;
  obs::Tracer::instance().setCapacity(64);
  const std::uint64_t keep = obs::newTraceId();
  { obs::ScopedSpan s("precious", keep); }
  obs::Tracer::instance().retain(keep);
  const std::uint64_t churn = obs::newTraceId();
  for (int i = 0; i < 200; ++i) {
    obs::ScopedSpan s("churn", churn);
  }
  const std::vector<obs::SpanRecord> spans = spansOf(keep);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].label(), "precious");
}

TEST(Trace, LongNamesTruncateSafely) {
  TracerFixture fx;
  const std::uint64_t t = obs::newTraceId();
  const std::string longName(100, 'n');
  { obs::ScopedSpan s(longName, t); }
  const std::vector<obs::SpanRecord> spans = spansOf(t);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].label(),
            std::string_view(longName).substr(0, sizeof(spans[0].name) - 1));
}

TEST(Trace, ChromeExportIsWellFormed) {
  TracerFixture fx;
  const std::uint64_t t = obs::newTraceId();
  {
    obs::ScopedSpan root("outer", t);
    obs::ScopedSpan leaf("inner");
  }
  const std::string json = obs::toChromeTraceJson(spansOf(t));
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"outer\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"inner\""), std::string::npos);
  // Ids cross as decimal strings (JSON doubles lose u64 precision).
  EXPECT_NE(json.find("\"trace\":\"" + std::to_string(t) + "\""),
            std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(Trace, ConcurrentEmissionKeepsEverySpan) {
  TracerFixture fx;
  obs::Tracer::instance().setCapacity(1 << 17);
  constexpr int kThreads = 8;
  constexpr int kSpansPer = 2000;
  std::vector<std::uint64_t> traces(kThreads);
  for (auto& t : traces) t = obs::newTraceId();
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&traces, w] {
      for (int i = 0; i < kSpansPer; ++i) {
        obs::ScopedSpan outer("outer", traces[static_cast<std::size_t>(w)]);
        obs::ScopedSpan inner("inner");
      }
    });
  }
  for (auto& th : workers) th.join();
  EXPECT_EQ(obs::Tracer::instance().dropped(), 0u);
  for (int w = 0; w < kThreads; ++w) {
    const std::vector<obs::SpanRecord> spans =
        spansOf(traces[static_cast<std::size_t>(w)]);
    EXPECT_EQ(spans.size(), 2u * kSpansPer);
  }
}

TEST(Trace, ConcurrentSnapshotAndClearRaceEmitters) {
  TracerFixture fx;
  obs::Tracer::instance().setCapacity(1024);
  std::atomic<bool> stop{false};
  std::vector<std::thread> emitters;
  for (int w = 0; w < 4; ++w) {
    emitters.emplace_back([&stop] {
      const std::uint64_t t = obs::newTraceId();
      while (!stop.load(std::memory_order_relaxed)) {
        obs::ScopedSpan s("racer", t);
      }
    });
  }
  for (int i = 0; i < 200; ++i) {
    obs::Tracer::instance().snapshot();
    obs::Tracer::instance().collect(1);
    if (i % 50 == 49) obs::Tracer::instance().clear();
  }
  stop.store(true);
  for (auto& th : emitters) th.join();
}

/// Sorted span names of one trace — the stage-shape fingerprint two
/// identical runs must agree on.
std::vector<std::string> sortedNames(std::uint64_t traceId) {
  std::vector<std::string> names;
  for (const obs::SpanRecord& s : spansOf(traceId))
    names.emplace_back(s.label());
  std::sort(names.begin(), names.end());
  return names;
}

TEST(Trace, RepeatedWorkspaceRunsTraceTheSameStages) {
  TracerFixture fx;
  const tech::Technology t = tech::nmos();
  workload::GeneratedChip chip = workload::generateChip(t, {1, 1, 2, 2, true});
  workload::InjectionPlan plan;
  workload::inject(chip, t, plan, /*seed=*/7);
  Workspace ws(std::move(chip.lib), t, {/*threads=*/2});

  auto tracedRun = [&](std::uint64_t traceId) {
    CheckRequest req = CheckRequest::drc(chip.top);
    req.traceId = traceId;
    const std::vector<CheckResult> res = ws.runBatch({&req, 1});
    ASSERT_EQ(res.size(), 1u);
    ASSERT_TRUE(res[0].ok()) << res[0].error;
  };

  const std::uint64_t cold = obs::newTraceId();
  tracedRun(cold);
  ASSERT_FALSE(spansOf(cold).empty());
  for (const obs::SpanRecord& s : spansOf(cold)) {
    EXPECT_EQ(s.traceId, cold);
    EXPECT_FALSE(s.label().empty());
  }

  // Two warm runs decompose into the same stage graph, so their traces
  // carry identical span-name multisets; the cold run's stages cover
  // everything a warm run does.
  const std::uint64_t warmA = obs::newTraceId();
  tracedRun(warmA);
  const std::uint64_t warmB = obs::newTraceId();
  tracedRun(warmB);
  const std::vector<std::string> a = sortedNames(warmA);
  EXPECT_EQ(a, sortedNames(warmB));
  ASSERT_FALSE(a.empty());
  const std::vector<std::string> coldNames = sortedNames(cold);
  EXPECT_TRUE(std::includes(coldNames.begin(), coldNames.end(), a.begin(),
                            a.end()));
}

#endif  // DIC_TRACING_ENABLED

TEST(Metrics, HistogramBucketEdges) {
  obs::Histogram h({1.0, 2.0, 4.0});
  h.observe(0.5);   // under the first edge
  h.observe(1.0);   // exactly on an edge lands in that bucket
  h.observe(1.5);
  h.observe(2.0);   // edge again
  h.observe(4.0);   // last edge
  h.observe(4.001); // past the last edge -> overflow
  EXPECT_EQ(h.bucketCount(0), 2u);
  EXPECT_EQ(h.bucketCount(1), 2u);
  EXPECT_EQ(h.bucketCount(2), 1u);
  EXPECT_EQ(h.bucketCount(3), 1u);
  EXPECT_EQ(h.totalCount(), 6u);
  ASSERT_EQ(h.bounds().size(), 3u);
}

TEST(Metrics, RegistryIsTypedAndIdempotent) {
  obs::Registry reg;
  obs::Counter& c = reg.counter("req.count");
  c.add();
  c.add(4);
  EXPECT_EQ(&reg.counter("req.count"), &c);  // same object on re-request
  EXPECT_THROW(reg.gauge("req.count"), std::logic_error);
  EXPECT_THROW(reg.histogram("req.count"), std::logic_error);

  reg.gauge("queue.depth").set(9);
  reg.histogram("latency").observe(0.001);

  const obs::MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.metrics.size(), 3u);
  EXPECT_TRUE(std::is_sorted(snap.metrics.begin(), snap.metrics.end(),
                             [](const obs::MetricValue& a,
                                const obs::MetricValue& b) {
                               return a.name < b.name;
                             }));
  EXPECT_EQ(snap.counterValue("req.count"), 5u);
  EXPECT_EQ(snap.counterValue("queue.depth"), 0u);  // not a counter
  EXPECT_EQ(snap.counterValue("absent"), 0u);
}

TEST(Metrics, ConcurrentRegistrationAndUpdates) {
  obs::Registry reg;
  constexpr int kThreads = 8;
  constexpr int kPer = 4000;
  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&reg] {
      // Everyone registers the same names: find-or-create must converge
      // on one object per name under contention.
      obs::Counter& c = reg.counter("shared.count");
      obs::Histogram& h = reg.histogram("shared.latency", {0.5, 1.5});
      for (int i = 0; i < kPer; ++i) {
        c.add();
        h.observe(i % 2 == 0 ? 0.25 : 1.0);
        reg.gauge("shared.depth").set(i);
      }
    });
  }
  for (auto& th : workers) th.join();
  const obs::MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counterValue("shared.count"),
            static_cast<std::uint64_t>(kThreads) * kPer);
  for (const obs::MetricValue& m : snap.metrics) {
    if (m.name != "shared.latency") continue;
    ASSERT_EQ(m.buckets.size(), 3u);
    EXPECT_EQ(m.buckets[0] + m.buckets[1] + m.buckets[2],
              static_cast<std::uint64_t>(kThreads) * kPer);
  }
}

/// The "library.*" counter subset of a snapshot, re-encoded as a wire
/// frame — the byte-stability contract `check_client --metrics` leans on.
std::vector<std::uint8_t> libraryHeatBytes(const obs::MetricsSnapshot& snap) {
  obs::MetricsSnapshot heat;
  for (const obs::MetricValue& m : snap.metrics)
    if (m.name.rfind("library.", 0) == 0) heat.metrics.push_back(m);
  return net::encodeMetricsFrame(1, heat);
}

TEST(Metrics, PerLibraryHeatByteStableAcrossIdenticalRuns) {
  const tech::Technology t = tech::nmos();
  auto runServer = [&]() {
    server::ServerOptions opts;
    opts.shards = 2;
    opts.threadsPerShard = 1;
    server::Server srv(opts);
    for (unsigned l = 0; l < 2; ++l) {
      workload::GeneratedChip chip =
          workload::generateChip(t, {1, 1, 2, 2, true});
      workload::InjectionPlan plan;
      workload::inject(chip, t, plan, /*seed=*/l + 1);
      const std::string id = "lib" + std::to_string(l);
      EXPECT_TRUE(srv.addLibrary(id, chip.lib, t));
      for (int i = 0; i < 3; ++i) {
        const CheckResult r =
            srv.submit(id, CheckRequest::drc(chip.top)).get();
        EXPECT_TRUE(r.ok()) << r.error;
      }
    }
    return libraryHeatBytes(srv.metricsSnapshot());
  };
  const std::vector<std::uint8_t> first = runServer();
  const std::vector<std::uint8_t> second = runServer();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace dic
