// Full-fidelity CIF round-trip tests: ports (4P), prechecked (4C),
// device types (4D), nets (4N) -- a generated chip exported to CIF and
// re-imported must verify and extract identically.
#include <gtest/gtest.h>

#include "cif/parser.hpp"
#include "cif/writer.hpp"
#include "drc/checker.hpp"
#include "erc/erc.hpp"
#include "layout/cifio.hpp"
#include "workload/generator.hpp"
#include "workload/inject.hpp"

namespace dic {
namespace {

TEST(CifPortExtension, ParseAndWrite) {
  const cif::CifFile f = cif::parse(
      "DS 1; 9 con; 4D CON_MD; 4C;"
      "4P A ND -500 -500 500 500 0;"
      "4P B NM -500 -500 500 500 0;"
      "L ND; B 1000 1000 0 0; DF; E");
  const cif::CifSymbol& s = f.symbols.at(1);
  EXPECT_TRUE(s.prechecked);
  ASSERT_EQ(s.ports.size(), 2u);
  EXPECT_EQ(s.ports[0].name, "A");
  EXPECT_EQ(s.ports[0].layer, "ND");
  EXPECT_EQ(s.ports[0].lo, (geom::Point{-500, -500}));
  EXPECT_EQ(s.ports[0].internalGroup, 0);

  const cif::CifFile g = cif::parse(cif::write(f));
  ASSERT_EQ(g.symbols.at(1).ports.size(), 2u);
  EXPECT_EQ(g.symbols.at(1).ports[1].name, "B");
  EXPECT_TRUE(g.symbols.at(1).prechecked);
}

TEST(CifPortExtension, NegativeGroupRoundTrips) {
  const cif::CifFile f = cif::parse(
      "DS 1; 4D TRAN; 4P S ND 0 0 10 10 -1; L ND; B 10 10 5 5; DF; E");
  EXPECT_EQ(f.symbols.at(1).ports[0].internalGroup, -1);
  const cif::CifFile g = cif::parse(cif::write(f));
  EXPECT_EQ(g.symbols.at(1).ports[0].internalGroup, -1);
}

class ChipRoundTrip : public ::testing::Test {
 protected:
  tech::Technology t = tech::nmos();

  layout::CellId reimport(const layout::Library& lib, layout::CellId root,
                          layout::Library& lib2) {
    const cif::CifFile file = layout::toCif(
        lib, root, [&](int l) { return t.layer(l).cifName; });
    const std::string text = cif::write(file);
    return layout::fromCif(cif::parse(text), lib2, [&](const std::string& n) {
      return t.layerByCifName(n).value_or(-1);
    });
  }
};

TEST_F(ChipRoundTrip, CleanChipStaysCleanAfterRoundTrip) {
  workload::GeneratedChip chip = workload::generateChip(
      t, {.blockRows = 1, .blockCols = 2, .invRows = 2, .invCols = 2,
          .withPads = true});
  layout::Library lib2;
  const layout::CellId root2 = reimport(chip.lib, chip.top, lib2);

  EXPECT_EQ(lib2.cellBBox(root2), chip.lib.cellBBox(chip.top));

  drc::Checker checker(lib2, root2, t, {});
  const auto rep = checker.run();
  EXPECT_TRUE(rep.empty()) << rep.text();
  const netlist::Netlist nl = checker.generateNetlist();
  EXPECT_TRUE(erc::check(nl, t).empty());

  // Same device population as the original.
  const netlist::Netlist orig = netlist::extract(chip.lib, chip.top, t);
  EXPECT_EQ(nl.devices.size(), orig.devices.size());
  EXPECT_EQ(nl.nets.size(), orig.nets.size());
}

TEST_F(ChipRoundTrip, InjectedErrorsSurviveRoundTrip) {
  workload::GeneratedChip chip = workload::generateChip(
      t, {.blockRows = 1, .blockCols = 2, .invRows = 2, .invCols = 2,
          .withPads = true});
  workload::InjectionPlan plan;
  plan.powerGroundShorts = 0;
  plan.floatingNets = 1;
  const auto truths = workload::inject(chip, t, plan, 11);

  layout::Library lib2;
  const layout::CellId root2 = reimport(chip.lib, chip.top, lib2);
  drc::Checker c1(chip.lib, chip.top, t, {});
  drc::Checker c2(lib2, root2, t, {});
  const auto r1 = c1.run();
  const auto r2 = c2.run();
  EXPECT_EQ(r1.count(), r2.count()) << "orig:\n"
                                    << r1.text() << "reimported:\n"
                                    << r2.text();
}

TEST_F(ChipRoundTrip, PrecheckedFlagSurvives) {
  layout::Library lib;
  layout::Cell dev;
  dev.name = "odd";
  dev.deviceType = "TRAN";
  dev.prechecked = true;  // intentionally-broken but marked checked
  const int np = *t.layerByName("poly");
  dev.elements.push_back(
      layout::makeBox(np, geom::makeRect(0, 0, 1000, 500)));
  const auto devId = lib.addCell(std::move(dev));
  layout::Cell top;
  top.name = "top";
  top.instances.push_back({devId, {geom::Orient::kR0, {0, 0}}, "d"});
  const auto root = lib.addCell(std::move(top));

  layout::Library lib2;
  const layout::CellId root2 = reimport(lib, root, lib2);
  drc::Checker checker(lib2, root2, t, {});
  EXPECT_TRUE(checker.checkPrimitiveSymbols().empty());
}

}  // namespace
}  // namespace dic
