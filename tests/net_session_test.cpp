// The dic::net session layer over real sockets on loopback: a
// net::Listener fronting a server::Server, driven by net::Client and by
// raw sockets speaking deliberately broken protocol. Covers the ISSUE 8
// acceptance points — wire responses byte-identical to in-process
// submits, many ids multiplexed over one connection, streamed report
// delivery, the kReject -> kRejected backpressure mapping, the
// graceful-shutdown drain, and the rule that a malformed frame or a
// mid-frame disconnect closes that one session and nothing else.
#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/client.hpp"
#include "net/listener.hpp"
#include "net/socket.hpp"
#include "server/server.hpp"
#include "workload/traffic.hpp"

namespace {

using namespace dic;

/// Register `libraries` copies of the canonical fleet chip (the same
/// recipe check_server_tcp serves) and return the shared top cell id.
layout::CellId addFleet(server::Server& srv, std::size_t libraries) {
  const tech::Technology t = tech::nmos();
  layout::CellId top = 0;
  for (std::size_t l = 0; l < libraries; ++l) {
    workload::GeneratedChip chip = workload::fleetChip(t);
    top = chip.top;
    EXPECT_TRUE(
        srv.addLibrary(workload::libraryName(l), std::move(chip.lib), t));
  }
  return top;
}

bool pollUntil(const std::function<bool()>& pred, double seconds = 10.0) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(seconds));
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

/// The four request kinds against one root.
std::vector<CheckRequest> allKinds(layout::CellId top) {
  return {CheckRequest::drc(top), CheckRequest::baseline(top),
          CheckRequest::ercCheck(top), CheckRequest::netlistOnly(top)};
}

TEST(NetSession, EndToEndByteIdenticalToInProcess) {
  server::Server srv{server::ServerOptions{}};
  const layout::CellId top = addFleet(srv, 1);
  net::Listener listener(srv);
  net::ClientOptions copts;
  copts.port = listener.port();
  net::Client client(copts);

  for (const CheckRequest& req : allKinds(top)) {
    CheckRequest tagged = req;
    tagged.tag = "wire";
    const CheckResult wire = client.check("lib0", tagged);
    const CheckResult ref = srv.submit("lib0", req).get();
    ASSERT_TRUE(ref.error.empty()) << ref.error;
    ASSERT_TRUE(wire.error.empty()) << wire.error;
    EXPECT_EQ(wire.kind, req.kind);
    EXPECT_EQ(wire.root, top);
    EXPECT_EQ(wire.tag, "wire");
    EXPECT_EQ(wire.report.text(), ref.report.text());
  }

  // A server-level failure crosses the wire through the same per-
  // request error channel the in-process API uses.
  const CheckResult missing = client.check("no-such-lib",
                                           CheckRequest::drc(top));
  EXPECT_EQ(missing.error, server::kErrLibraryNotFound);

  listener.shutdown();
  srv.shutdown();
}

TEST(NetSession, ConcurrentMultiplexingOverOneConnection) {
  server::Server srv{server::ServerOptions{}};
  const layout::CellId top = addFleet(srv, 2);
  net::Listener listener(srv);
  net::ClientOptions copts;
  copts.port = listener.port();
  net::Client client(copts);

  // In-process reference per (library, kind).
  const std::vector<CheckRequest> kinds = allKinds(top);
  std::string ref[2][4];
  for (std::size_t l = 0; l < 2; ++l)
    for (std::size_t k = 0; k < 4; ++k) {
      const CheckResult r =
          srv.submit(workload::libraryName(l), kinds[k]).get();
      ASSERT_TRUE(r.error.empty()) << r.error;
      ref[l][k] = r.report.text();
    }

  // 64 in-flight ids over the one socket, submitted from 8 threads.
  constexpr std::size_t kThreads = 8, kPerThread = 8;
  std::future<CheckResult> futs[kThreads * kPerThread];
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        const std::size_t k = t * kPerThread + i;
        CheckRequest req = kinds[(k / 2) % 4];
        req.tag = "t" + std::to_string(k);
        futs[k] = client.submit(workload::libraryName(k % 2), req);
      }
    });
  for (std::thread& th : threads) th.join();

  for (std::size_t k = 0; k < kThreads * kPerThread; ++k) {
    const CheckResult r = futs[k].get();
    ASSERT_TRUE(r.error.empty()) << k << ": " << r.error;
    // The echoed tag proves the response was matched to the right id.
    EXPECT_EQ(r.tag, "t" + std::to_string(k));
    EXPECT_EQ(r.kind, kinds[(k / 2) % 4].kind);
    EXPECT_EQ(r.report.text(), ref[k % 2][(k / 2) % 4]);
  }

  const net::ClientTelemetry tel = client.telemetry();
  EXPECT_GE(tel.framesOut, kThreads * kPerThread);
  EXPECT_GE(tel.framesIn, kThreads * kPerThread);

  listener.shutdown();
  srv.shutdown();
}

TEST(NetSession, StreamingLargeReportDelivery) {
  server::Server srv{server::ServerOptions{}};
  const layout::CellId top = addFleet(srv, 1);
  // Tiny chunk: any report beyond 2 violations must stream as
  // kReportPart frames closed by a kReportEnd.
  net::ListenerOptions lopts;
  lopts.reportChunkViolations = 2;
  net::Listener listener(srv, lopts);
  net::ClientOptions copts;
  copts.port = listener.port();
  net::Client client(copts);

  const CheckResult ref = srv.submit("lib0", CheckRequest::drc(top)).get();
  ASSERT_TRUE(ref.error.empty()) << ref.error;
  // The fleet chip's injected plan plants a dozen real violations; the
  // streaming path needs at least three to produce multiple parts.
  ASSERT_GE(ref.report.count(), 3u);

  const CheckResult wire = client.check("lib0", CheckRequest::drc(top));
  ASSERT_TRUE(wire.error.empty()) << wire.error;
  EXPECT_EQ(wire.report.text(), ref.report.text());
  EXPECT_GE(client.telemetry().reportPartFrames, 2u);

  listener.shutdown();
  srv.shutdown();
}

TEST(NetSession, BackpressureRejectMapsToRejectedFrame) {
  server::ServerOptions sopts;
  sopts.shards = 1;
  sopts.threadsPerShard = 1;
  sopts.queueCapacity = 1;
  sopts.overflow = server::OverflowPolicy::kReject;
  server::Server srv(sopts);
  const layout::CellId top = addFleet(srv, 1);
  net::Listener listener(srv);
  net::ClientOptions copts;
  copts.port = listener.port();
  net::Client client(copts);

  // The cold first request occupies the single worker while the burst
  // lands, so the one-slot queue must turn most of the burst away.
  std::vector<std::future<CheckResult>> futs;
  futs.push_back(client.submit("lib0", CheckRequest::drc(top)));
  for (int i = 0; i < 16; ++i)
    futs.push_back(client.submit("lib0", CheckRequest::drc(top)));

  std::size_t served = 0, rejected = 0;
  for (auto& f : futs) {
    const CheckResult r = f.get();
    if (r.error.empty()) {
      ++served;
    } else {
      EXPECT_EQ(r.error, server::kErrQueueFull);
      ++rejected;
      EXPECT_TRUE(r.report.empty());  // a turndown ships no violations
    }
  }
  EXPECT_EQ(served + rejected, futs.size());
  EXPECT_GE(served, 1u);
  EXPECT_GE(rejected, 1u);
  EXPECT_EQ(client.telemetry().rejectedFrames, rejected);

  listener.shutdown();
  srv.shutdown();
}

TEST(NetSession, GracefulShutdownDrainsAcceptedRequests) {
  server::Server srv{server::ServerOptions{}};
  const layout::CellId top = addFleet(srv, 1);
  auto listener = std::make_unique<net::Listener>(srv);
  const std::uint16_t port = listener->port();
  net::ClientOptions copts;
  copts.port = port;
  net::Client client(copts);

  constexpr std::size_t kRequests = 6;
  std::vector<std::future<CheckResult>> futs;
  for (std::size_t i = 0; i < kRequests; ++i) {
    CheckRequest req = CheckRequest::drc(top);
    req.tag = "drain" + std::to_string(i);
    futs.push_back(client.submit("lib0", req));
  }
  // Wait until the listener has decoded all six request frames, so the
  // shutdown below races against in-flight work, not intake.
  ASSERT_TRUE(pollUntil(
      [&] { return listener->stats().framesIn >= kRequests; }));

  listener->shutdown();
  // The drain contract: everything accepted before shutdown completes
  // with a real, flushed response.
  const CheckResult ref = srv.submit("lib0", CheckRequest::drc(top)).get();
  for (std::size_t i = 0; i < futs.size(); ++i) {
    const CheckResult r = futs[i].get();
    ASSERT_TRUE(r.error.empty()) << i << ": " << r.error;
    EXPECT_EQ(r.tag, "drain" + std::to_string(i));
    EXPECT_EQ(r.report.text(), ref.report.text());
  }
  const net::ListenerStats ls = listener->stats();
  EXPECT_EQ(ls.framesIn, kRequests);
  EXPECT_GE(ls.framesOut, kRequests);
  EXPECT_EQ(ls.sessionsOpen, 0u);

  // New connections are refused once the drain has begun.
  net::ClientOptions copts2;
  copts2.port = port;
  copts2.connectTimeoutSeconds = 1.0;
  net::Client late(copts2);
  std::string err;
  EXPECT_FALSE(late.connect(&err));

  listener.reset();
  srv.shutdown();
}

TEST(NetSession, MalformedFrameClosesOnlyThatSession) {
  server::Server srv{server::ServerOptions{}};
  const layout::CellId top = addFleet(srv, 1);
  net::Listener listener(srv);
  net::ClientOptions copts;
  copts.port = listener.port();
  net::Client client(copts);
  ASSERT_TRUE(client.check("lib0", CheckRequest::drc(top)).error.empty());

  // A raw connection speaking garbage: the server answers with a
  // best-effort kError frame naming the failure, then closes.
  std::string err;
  net::Socket raw =
      net::connectTo("127.0.0.1", listener.port(), 5.0, &err);
  ASSERT_TRUE(raw.valid()) << err;
  std::vector<std::uint8_t> junk(net::kHeaderSize, 0xAB);
  ASSERT_TRUE(raw.sendAll(junk.data(), junk.size()));

  std::uint8_t hdr[net::kHeaderSize];
  ASSERT_TRUE(raw.recvAll(hdr, net::kHeaderSize));
  net::FrameHeader h;
  ASSERT_TRUE(net::parseHeader(hdr, h, &err)) << err;
  EXPECT_EQ(h.type, net::FrameType::kError);
  std::vector<std::uint8_t> payload(h.payloadLen);
  ASSERT_TRUE(raw.recvAll(payload.data(), payload.size()));
  EXPECT_EQ(net::decodeErrorPayload(payload.data(), payload.size()),
            "bad magic");
  // ... followed by an orderly close of that session only.
  std::uint8_t byte;
  EXPECT_FALSE(raw.recvAll(&byte, 1));
  EXPECT_TRUE(pollUntil(
      [&] { return listener.stats().malformedSessions == 1; }));

  // The well-behaved session on the same listener is untouched.
  EXPECT_TRUE(client.check("lib0", CheckRequest::drc(top)).error.empty());

  listener.shutdown();
  srv.shutdown();
}

TEST(NetSession, MidFrameDisconnectIsACleanSessionEnd) {
  server::Server srv{server::ServerOptions{}};
  const layout::CellId top = addFleet(srv, 1);
  net::Listener listener(srv);
  net::ClientOptions copts;
  copts.port = listener.port();
  net::Client client(copts);
  ASSERT_TRUE(client.check("lib0", CheckRequest::drc(top)).error.empty());

  // Half a header, then a hard close: an ordinary session end, not a
  // protocol error.
  {
    std::string err;
    net::Socket raw =
        net::connectTo("127.0.0.1", listener.port(), 5.0, &err);
    ASSERT_TRUE(raw.valid()) << err;
    std::vector<std::uint8_t> half;
    net::appendHeader(half, net::FrameType::kCheck, 1, 64);
    ASSERT_TRUE(raw.sendAll(half.data(), net::kHeaderSize / 2));
  }
  ASSERT_TRUE(pollUntil([&] {
    const net::ListenerStats s = listener.stats();
    return s.sessionsAccepted == 2 && s.sessionsOpen == 1;
  }));
  EXPECT_EQ(listener.stats().malformedSessions, 0u);
  EXPECT_TRUE(client.check("lib0", CheckRequest::drc(top)).error.empty());

  listener.shutdown();
  srv.shutdown();
}

TEST(NetSession, StatsOverWire) {
  server::ServerOptions sopts;
  sopts.shards = 2;
  server::Server srv(sopts);
  const layout::CellId top = addFleet(srv, 2);
  net::Listener listener(srv);
  net::ClientOptions copts;
  copts.port = listener.port();
  net::Client client(copts);

  for (std::size_t l = 0; l < 2; ++l)
    ASSERT_TRUE(client.check(workload::libraryName(l),
                             CheckRequest::drc(top)).error.empty());

  server::ServerStats wire;
  std::string err;
  ASSERT_TRUE(client.stats(wire, &err)) << err;
  const server::ServerStats local = srv.stats();
  ASSERT_EQ(wire.shards.size(), local.shards.size());
  EXPECT_EQ(wire.totalServed(), local.totalServed());
  std::size_t libs = 0;
  for (const server::ShardStats& s : wire.shards) libs += s.libraries;
  EXPECT_EQ(libs, 2u);

  listener.shutdown();
  srv.shutdown();
}

// --- client failure channels against a server that never answers -----------

TEST(NetClient, RequestTimeoutExpiresFuture) {
  // A listener that accepts and then goes silent: the per-request
  // deadline is client-side and must fire without any server help.
  net::Acceptor acc;
  ASSERT_TRUE(acc.listenOn("127.0.0.1", 0));
  net::Socket held;
  std::thread accepter([&] { held = acc.accept(); });

  net::ClientOptions copts;
  copts.port = acc.port();
  copts.requestTimeoutSeconds = 0.05;
  copts.reconnect = false;
  net::Client client(copts);
  const CheckResult r = client.check("lib0", CheckRequest::drc(0));
  EXPECT_EQ(r.error, net::kErrNetTimeout);
  EXPECT_GE(client.telemetry().timeouts, 1u);

  accepter.join();
  client.close();
  acc.shutdownListen();
}

TEST(NetClient, ConnectionLostFailsPendingFutures) {
  net::Acceptor acc;
  ASSERT_TRUE(acc.listenOn("127.0.0.1", 0));

  net::ClientOptions copts;
  copts.port = acc.port();
  copts.reconnect = false;
  net::Client client(copts);
  std::string err;
  ASSERT_TRUE(client.connect(&err)) << err;
  std::future<CheckResult> fut = client.submit("lib0", CheckRequest::drc(0));

  // Accept the queued handshake, then slam the connection shut.
  net::Socket held = acc.accept();
  ASSERT_TRUE(held.valid());
  held.close();

  EXPECT_EQ(fut.get().error, net::kErrConnectionLost);
  acc.shutdownListen();
}

TEST(NetClient, ConnectToClosedPortFails) {
  // Bind an ephemeral port, then release it: connecting to it must
  // fail with a reason, not hang.
  std::uint16_t port = 0;
  {
    net::Acceptor acc;
    ASSERT_TRUE(acc.listenOn("127.0.0.1", 0));
    port = acc.port();
  }
  net::ClientOptions copts;
  copts.port = port;
  copts.connectTimeoutSeconds = 1.0;
  net::Client client(copts);
  std::string err;
  EXPECT_FALSE(client.connect(&err));
  EXPECT_FALSE(err.empty());
}

}  // namespace
