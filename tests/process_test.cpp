// Tests for the 2-D process model: Eq. (1) closed form vs numeric
// integration, proximity effects (Fig. 13), relational rules (Fig. 14),
// and line-of-closest-approach spacing.
#include <gtest/gtest.h>

#include "process/exposure.hpp"
#include "process/proximity.hpp"
#include "process/relational.hpp"

namespace dic::process {
namespace {

using geom::makeRect;
using geom::Point;
using geom::Rect;
using geom::Region;

TEST(Exposure, DeepInteriorApproachesOne) {
  const ExposureModel m(10.0);
  const Rect big = makeRect(-1000, -1000, 1000, 1000);
  EXPECT_NEAR(m.boxExposure(big, {0, 0}), 1.0, 1e-9);
}

TEST(Exposure, StraightEdgeIsHalf) {
  const ExposureModel m(10.0);
  const Rect big = makeRect(0, -1000, 2000, 1000);
  EXPECT_NEAR(m.boxExposure(big, {0, 0}), 0.5, 1e-9);
}

TEST(Exposure, ConvexCornerIsQuarter) {
  const ExposureModel m(10.0);
  const Rect big = makeRect(0, 0, 2000, 2000);
  EXPECT_NEAR(m.boxExposure(big, {0, 0}), 0.25, 1e-9);
}

TEST(Exposure, FarOutsideApproachesZero) {
  const ExposureModel m(10.0);
  const Rect box = makeRect(0, 0, 100, 100);
  EXPECT_NEAR(m.boxExposure(box, {500, 500}), 0.0, 1e-12);
}

TEST(Exposure, RegionSumsBoxes) {
  const ExposureModel m(10.0);
  const Region r = unite(Region(makeRect(-200, -200, 0, 200)),
                         Region(makeRect(0, -200, 200, 200)));
  // The union covers the origin's neighbourhood completely.
  EXPECT_NEAR(m.exposure(r, {0, 0}), 1.0, 1e-6);
}

class ClosedFormVsNumeric : public ::testing::TestWithParam<int> {};

TEST_P(ClosedFormVsNumeric, Eq1ClosedFormMatchesSimpson) {
  const double sigma = 5.0 + GetParam() * 3.0;
  const ExposureModel m(sigma);
  const Rect box = makeRect(-40, -25, 35, 50);
  const Point probes[] = {{0, 0},   {30, 10}, {-40, -25}, {50, 60},
                          {35, 0},  {-10, 49}, {100, 0},  {0, -60}};
  for (const Point p : probes) {
    const double closed = m.boxExposure(box, p);
    const double numeric = m.boxExposureNumeric(box, p, 128);
    EXPECT_NEAR(closed, numeric, 1e-4)
        << "sigma=" << sigma << " p=" << geom::toString(p);
  }
}

INSTANTIATE_TEST_SUITE_P(Sigmas, ClosedFormVsNumeric, ::testing::Range(0, 6));

TEST(Exposure, MaxAlongSegment) {
  const ExposureModel m(10.0);
  const Region r(makeRect(0, 0, 100, 100));
  const double maxv = m.maxAlongSegment(r, {-50, 50}, {150, 50});
  EXPECT_NEAR(maxv, 1.0, 1e-5);  // the segment crosses the interior
  const double edge = m.maxAlongSegment(r, {-50, -50}, {150, -50});
  EXPECT_LT(edge, 0.5);  // runs outside, below edge threshold
}

// --- Fig. 13: proximity-effect expand ---------------------------------------

TEST(Proximity, EdgeBiasZeroAtHalfThreshold) {
  const ExposureModel m(10.0);
  EXPECT_NEAR(edgeBias(m, 0.5), 0.0, 0.01);
  // Lower threshold -> developed image extends beyond the drawn edge.
  EXPECT_GT(edgeBias(m, 0.3), 0.0);
  EXPECT_LT(edgeBias(m, 0.7), 0.0);
}

TEST(Proximity, ContourAreaTracksThreshold) {
  const ExposureModel m(10.0);
  const Region mask(makeRect(0, 0, 200, 200));
  const Rect win = makeRect(-60, -60, 260, 260);
  const double aLow = contourArea(m, mask, win, 0.3, 4).area;
  const double aMid = contourArea(m, mask, win, 0.5, 4).area;
  const double aHigh = contourArea(m, mask, win, 0.7, 4).area;
  EXPECT_GT(aLow, aMid);
  EXPECT_GT(aMid, aHigh);
  // At threshold 0.5 the developed area is close to the drawn area (the
  // corner rounding loses a little).
  EXPECT_NEAR(aMid, 200.0 * 200.0, 200.0 * 200.0 * 0.03);
}

TEST(Proximity, CornersRoundUnlikeOrthogonalExpand) {
  // Fig. 13: the orthogonal expand keeps square corners; the proximity
  // (exposure) contour rounds them. Exact point tests: the mid-edge point
  // at the biased position develops, the orthogonally-expanded *corner*
  // point does not.
  const ExposureModel m(10.0);
  const Region mask(makeRect(0, 0, 200, 200));
  const double thr = 0.3;
  const double bias = edgeBias(m, thr);
  ASSERT_GT(bias, 0);
  const geom::Coord b = static_cast<geom::Coord>(std::lround(bias));
  EXPECT_NEAR(m.exposure(mask, {100, 200 + b}), thr, 0.02);
  EXPECT_LT(m.exposure(mask, {200 + b, 200 + b}), 0.7 * thr);
  // The contour area sits between the drawn area and the orthogonal
  // expand's area (sampled coarsely; generous bounds).
  const Rect win = makeRect(-80, -80, 280, 280);
  const double proxArea = contourArea(m, mask, win, thr, 2).area;
  EXPECT_GT(proxArea, 200.0 * 200.0);
  EXPECT_LT(proxArea, orthogonalExpandArea(mask, b + 2));
}

TEST(Proximity, NearbyGeometryBoostsExposure) {
  // The proximity effect: a neighbour raises the exposure at my edge.
  const ExposureModel m(10.0);
  const Rect a = makeRect(0, 0, 100, 100);
  const Rect b = makeRect(115, 0, 215, 100);  // 15 = 1.5 sigma away
  const BridgeAnalysis ba = analyzeBridge(m, a, b, 0.5);
  EXPECT_GT(ba.facingEdgeExposure, ba.isolatedEdgeExposure);
}

TEST(Proximity, BridgingAtSmallGapOnly) {
  const ExposureModel m(10.0);
  const Rect a = makeRect(0, 0, 100, 100);
  // Wide gap: no bridge.
  EXPECT_FALSE(
      analyzeBridge(m, a, makeRect(160, 0, 260, 100), 0.5).bridges);
  // Tiny gap (well under sigma): exposure between stays above threshold.
  EXPECT_TRUE(analyzeBridge(m, a, makeRect(104, 0, 204, 100), 0.5).bridges);
}

TEST(Proximity, BridgeGapExposureMonotonicInGap) {
  const ExposureModel m(10.0);
  const Rect a = makeRect(0, 0, 100, 100);
  double prev = 1e9;
  for (geom::Coord gap = 4; gap <= 44; gap += 8) {
    const BridgeAnalysis ba =
        analyzeBridge(m, a, makeRect(100 + gap, 0, 200 + gap, 100), 0.5);
    EXPECT_LT(ba.maxGapExposure, prev) << "gap=" << gap;
    prev = ba.maxGapExposure;
  }
}

// --- Fig. 14: relational rule ------------------------------------------------

TEST(Relational, RetreatShrinksWithWidth) {
  // "the 'retreat' of the end on narrow wires": narrower -> more retreat.
  const ExposureModel m(10.0);
  double prev = 1e9;
  for (geom::Coord w : {20, 30, 40, 60, 100}) {
    const double r = endRetreat(m, w, 400, 0.5);
    EXPECT_LT(r, prev) << "width=" << w;
    EXPECT_GE(r, 0.0);
    prev = r;
  }
}

TEST(Relational, WideWireBarelyRetreats) {
  const ExposureModel m(10.0);
  EXPECT_LT(endRetreat(m, 200, 600, 0.5), 1.5);
}

TEST(Relational, VeryNarrowWireVanishes) {
  const ExposureModel m(10.0);
  // A 4-unit-wide wire at sigma 10 never reaches threshold: total loss.
  EXPECT_DOUBLE_EQ(endRetreat(m, 4, 200, 0.5), 200.0);
}

TEST(Relational, GateOverlapCheck) {
  const ExposureModel m(10.0);
  // A wide poly with the nominal 2-lambda-scale overlap passes...
  const RelationalCheck wide =
      checkGateOverlapRelational(m, 100, 50, 30, 0.5);
  EXPECT_TRUE(wide.pass);
  // ...but a narrow poly with the same drawn overlap fails: the end
  // retreats too far. This is the relational dependence on width.
  const RelationalCheck narrow =
      checkGateOverlapRelational(m, 14, 50, 35, 0.5);
  EXPECT_GT(narrow.retreat, wide.retreat);
  EXPECT_FALSE(narrow.pass);
  const RelationalCheck wideStrict =
      checkGateOverlapRelational(m, 100, 50, 35, 0.5);
  EXPECT_TRUE(wideStrict.pass);
}

// --- Line of closest approach spacing ----------------------------------------

TEST(Lca, CloseShapesFail) {
  const ExposureModel m(10.0);
  const Region a(makeRect(0, 0, 100, 100));
  const Region b(makeRect(106, 0, 206, 100));
  const LcaSpacing r = checkSpacingLca(m, a, b, 0.5);
  EXPECT_TRUE(r.fails);
}

TEST(Lca, FarShapesPass) {
  const ExposureModel m(10.0);
  const Region a(makeRect(0, 0, 100, 100));
  const Region b(makeRect(170, 0, 270, 100));
  EXPECT_FALSE(checkSpacingLca(m, a, b, 0.5).fails);
}

TEST(Lca, MisalignmentTightensTheCheck) {
  // "The worst case processing in this case consists of both bias effects
  // and mask misalignment": a pair that passes aligned can fail once the
  // misalignment translation is applied.
  const ExposureModel m(10.0);
  const Region a(makeRect(0, 0, 100, 100));
  const Region b(makeRect(135, 0, 235, 100));
  EXPECT_FALSE(checkSpacingLca(m, a, b, 0.5, 0).fails);
  EXPECT_TRUE(checkSpacingLca(m, a, b, 0.5, 30).fails);
}

TEST(Lca, DiagonalClosestApproach) {
  const ExposureModel m(10.0);
  const Region a(makeRect(0, 0, 100, 100));
  // Corner-to-corner vs edge-to-edge at the same 4-unit axis gap: the
  // corner dip is weaker (two quarter-planes instead of two half-planes),
  // so corner gaps are less bridge-prone -- a physical fact neither
  // geometric expand models.
  const LcaSpacing corner =
      checkSpacingLca(m, a, Region(makeRect(104, 104, 204, 204)), 0.5);
  const LcaSpacing edge =
      checkSpacingLca(m, a, Region(makeRect(104, 0, 204, 100)), 0.5);
  EXPECT_GT(corner.maxExposure, 0.3);
  EXPECT_GT(edge.maxExposure, corner.maxExposure);
  EXPECT_TRUE(edge.fails);
}

}  // namespace
}  // namespace dic::process
