// Tests for the dic::server serving tier: stable routing, concurrent
// multi-shard submission byte-identical to sequential per-library
// Workspace runs, two-phase shutdown draining queued work, the QueueFull
// reject path, rolling dropLibrary under a submit storm, and the
// Workspace view-cache LRU byte cap the server relies on for
// long-running shards.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/queue.hpp"
#include "server/server.hpp"
#include "service/workspace.hpp"
#include "workload/generator.hpp"
#include "workload/inject.hpp"
#include "workload/traffic.hpp"

namespace dic {
namespace {

/// A small injected chip; seed varies the defect plant per library so
/// libraries are distinguishable by their reports.
workload::GeneratedChip makeChip(unsigned seed,
                                 const workload::ChipParams& p = {1, 1, 2, 2,
                                                                  true}) {
  const tech::Technology t = tech::nmos();
  workload::GeneratedChip chip = workload::generateChip(t, p);
  workload::InjectionPlan plan;
  workload::inject(chip, t, plan, seed);
  return chip;
}

TEST(BoundedQueue, CapacityRejectAndDrainAfterClose) {
  server::BoundedQueue<int> q(2);
  int v = 1;
  EXPECT_EQ(q.tryPush(v), server::PushResult::kOk);
  v = 2;
  EXPECT_EQ(q.tryPush(v), server::PushResult::kOk);
  v = 3;
  EXPECT_EQ(q.tryPush(v), server::PushResult::kFull);
  EXPECT_EQ(v, 3);  // kept on failure
  q.close();
  EXPECT_EQ(q.tryPush(v), server::PushResult::kClosed);
  int out = 0;
  EXPECT_TRUE(q.pop(out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(q.pop(out));
  EXPECT_EQ(out, 2);  // accepted items survive the close
  EXPECT_FALSE(q.pop(out));  // closed and drained
}

TEST(Server, StableRoutingAndRegistration) {
  server::ServerOptions opts;
  opts.shards = 4;
  opts.threadsPerShard = 1;
  server::Server srv(opts);
  EXPECT_EQ(srv.shardCount(), 4);

  // Routing is a pure function of the id, surfaced as a Placement.
  const server::Placement p = srv.placementOf("libA");
  EXPECT_EQ(p.owner, srv.placementOf("libA").owner);
  EXPECT_EQ(static_cast<std::uint64_t>(p.owner),
            server::stableHash("libA") % 4u);
  EXPECT_TRUE(p.replicas.empty());  // hash policy never replicates
  EXPECT_EQ(p.policy, server::RoutingPolicy::kHash);
  // The deprecated shim answers with the placement's owner.
  EXPECT_EQ(srv.shardOf("libA"), p.owner);

  workload::GeneratedChip chip = makeChip(1);
  EXPECT_TRUE(srv.addLibrary("libA", chip.lib, tech::nmos()));
  EXPECT_FALSE(srv.addLibrary("libA", chip.lib, tech::nmos()));  // duplicate
  EXPECT_EQ(srv.libraryCount(), 1u);
  EXPECT_TRUE(srv.dropLibrary("libA"));
  EXPECT_FALSE(srv.dropLibrary("libA"));
  EXPECT_EQ(srv.libraryCount(), 0u);
}

TEST(Server, UnknownLibraryReportsNotFound) {
  server::ServerOptions opts;
  opts.shards = 2;
  opts.threadsPerShard = 1;
  server::Server srv(opts);
  CheckResult r = srv.submit("ghost", CheckRequest::drc(0)).get();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error, server::kErrLibraryNotFound);

  std::vector<CheckResult> rs =
      srv.submitBatch("ghost", {CheckRequest::drc(0), CheckRequest::ercCheck(0)})
          .get();
  ASSERT_EQ(rs.size(), 2u);
  for (const CheckResult& x : rs) EXPECT_EQ(x.error, server::kErrLibraryNotFound);
}

TEST(Server, ConcurrentSubmitMatchesSequentialPerLibrary) {
  // 4 libraries across 4 shards, hammered from 8 client threads with a
  // deterministic mixed trace. Every result must be byte-identical to a
  // sequential per-library Workspace run of the same request — the
  // serving tier may reorder *scheduling*, never *results*.
  constexpr int kLibs = 4;
  constexpr int kClients = 8;

  // Sequential reference: per library, per kind, the report text.
  std::map<std::string, std::map<CheckKind, std::string>> ref;
  for (int l = 0; l < kLibs; ++l) {
    workload::GeneratedChip chip = makeChip(10 + l);
    const layout::CellId top = chip.top;
    Workspace ws(std::move(chip.lib), tech::nmos(), {/*threads=*/1});
    const std::string id = workload::libraryName(l);
    for (const CheckKind k :
         {CheckKind::kHierarchicalDrc, CheckKind::kFlatBaselineDrc,
          CheckKind::kErc, CheckKind::kNetlistOnly}) {
      workload::TrafficEvent ev;
      ev.kind = k;
      ref[id][k] = ws.run(workload::materialize(ev, top)).report.text();
    }
  }

  server::ServerOptions opts;
  opts.shards = 4;
  opts.threadsPerShard = 2;
  opts.queueCapacity = 256;
  server::Server srv(opts);
  std::vector<layout::CellId> tops(kLibs);
  for (int l = 0; l < kLibs; ++l) {
    workload::GeneratedChip chip = makeChip(10 + l);
    tops[l] = chip.top;
    ASSERT_TRUE(srv.addLibrary(workload::libraryName(l), std::move(chip.lib),
                               tech::nmos()));
  }

  // One deterministic trace per client thread.
  struct Submitted {
    std::size_t library;
    CheckKind kind;
    std::future<CheckResult> fut;
  };
  std::vector<std::vector<Submitted>> perClient(kClients);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      workload::TrafficOptions topt;
      topt.libraries = kLibs;
      topt.requests = 12;
      topt.seed = 100 + static_cast<std::uint64_t>(c);
      for (const workload::TrafficEvent& ev : workload::generateTrace(topt)) {
        const std::string id = workload::libraryName(ev.library);
        perClient[c].push_back(
            {ev.library, ev.kind,
             srv.submit(id, workload::materialize(ev, tops[ev.library]))});
      }
    });
  }
  for (std::thread& t : clients) t.join();

  std::size_t checked = 0;
  for (auto& batch : perClient) {
    for (Submitted& s : batch) {
      const CheckResult r = s.fut.get();
      ASSERT_TRUE(r.ok()) << r.error;
      const std::string id = workload::libraryName(s.library);
      EXPECT_EQ(r.report.text(), ref[id][s.kind])
          << id << " kind " << toString(s.kind);
      ++checked;
    }
  }
  EXPECT_EQ(checked, static_cast<std::size_t>(kClients) * 12u);

  const server::ServerStats st = srv.stats();
  EXPECT_EQ(st.totalServed(), checked);
  EXPECT_EQ(st.totalRejected(), 0u);
  EXPECT_GT(st.totalCacheBytes(), 0u);  // warm views are accounted
}

TEST(Server, ShutdownDrainsQueuedWork) {
  // Queue up more work than one serial shard can start on immediately,
  // then shut down: phase 2 must drain — every accepted future resolves
  // with a real result, none with ServerStopped.
  server::ServerOptions opts;
  opts.shards = 1;
  opts.threadsPerShard = 1;
  opts.queueCapacity = 64;
  server::Server srv(opts);
  workload::GeneratedChip chip = makeChip(3);
  const layout::CellId top = chip.top;
  ASSERT_TRUE(srv.addLibrary("lib", std::move(chip.lib), tech::nmos()));

  std::vector<std::future<CheckResult>> futs;
  for (int k = 0; k < 16; ++k)
    futs.push_back(srv.submit("lib", CheckRequest::drc(top)));
  srv.shutdown();

  std::string refText;
  for (std::size_t k = 0; k < futs.size(); ++k) {
    CheckResult r = futs[k].get();
    ASSERT_TRUE(r.ok()) << "request " << k << ": " << r.error;
    if (k == 0)
      refText = r.report.text();
    else
      EXPECT_EQ(r.report.text(), refText) << "request " << k;
  }
  EXPECT_EQ(srv.stats().totalServed(), futs.size());

  // Phase 1 after the fact: the intake is closed.
  CheckResult late = srv.submit("lib", CheckRequest::drc(top)).get();
  EXPECT_EQ(late.error, server::kErrServerStopped);
  EXPECT_FALSE(srv.addLibrary("late", layout::Library{}, tech::nmos()));
}

TEST(Server, QueueFullRejectPath) {
  // Reject policy, capacity 1: stuff the single shard with heavy DRC
  // requests far faster than it can serve them. The overflow must come
  // back as immediate QueueFull results, and accepted + rejected must
  // account for every submission.
  server::ServerOptions opts;
  opts.shards = 1;
  opts.threadsPerShard = 1;
  opts.queueCapacity = 1;
  opts.overflow = server::OverflowPolicy::kReject;
  server::Server srv(opts);
  workload::GeneratedChip chip = makeChip(4, {2, 2, 2, 4, true});
  const layout::CellId top = chip.top;
  ASSERT_TRUE(srv.addLibrary("lib", std::move(chip.lib), tech::nmos()));

  constexpr int kBurst = 12;
  std::vector<std::future<CheckResult>> futs;
  for (int k = 0; k < kBurst; ++k)
    futs.push_back(srv.submit("lib", CheckRequest::drc(top)));

  int ok = 0, rejected = 0;
  for (auto& f : futs) {
    CheckResult r = f.get();
    if (r.ok()) {
      ++ok;
    } else {
      EXPECT_EQ(r.error, server::kErrQueueFull);
      ++rejected;
    }
  }
  EXPECT_EQ(ok + rejected, kBurst);
  // A cold DRC on the 2x2-block chip takes orders of magnitude longer
  // than 12 enqueues; with one in flight and one queued slot, the burst
  // cannot all be accepted.
  EXPECT_GE(rejected, 1);
  EXPECT_GE(ok, 1);  // in-flight + queued still serve
  const server::ServerStats st = srv.stats();
  EXPECT_EQ(st.totalRejected(), static_cast<std::size_t>(rejected));
  EXPECT_EQ(st.totalServed(), static_cast<std::size_t>(ok));
}

TEST(Server, BatchGoesThroughWorkspaceBatchDispatch) {
  server::ServerOptions opts;
  opts.shards = 2;
  opts.threadsPerShard = 2;
  server::Server srv(opts);
  workload::GeneratedChip chip = makeChip(5);
  const layout::CellId top = chip.top;

  // Sequential reference on an identical library.
  workload::GeneratedChip ref = makeChip(5);
  Workspace ws(std::move(ref.lib), tech::nmos(), {1});

  ASSERT_TRUE(srv.addLibrary("lib", std::move(chip.lib), tech::nmos()));
  const std::vector<CheckRequest> reqs = {
      CheckRequest::drc(top), CheckRequest::baseline(top),
      CheckRequest::ercCheck(top), CheckRequest::netlistOnly(top)};
  std::vector<CheckResult> out = srv.submitBatch("lib", reqs).get();
  ASSERT_EQ(out.size(), reqs.size());
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    ASSERT_TRUE(out[i].ok()) << out[i].error;
    EXPECT_EQ(out[i].report.text(), ws.run(reqs[i]).report.text())
        << "request " << i;
  }
  EXPECT_EQ(srv.stats().totalServed(), reqs.size());
}

TEST(Server, BatchFailureIsolatedInsideDecomposedGraph) {
  // submitBatch rides the decomposed runBatch path: a bad-root request
  // fails inside the shard's batch graph without touching its siblings,
  // and the whole batch still resolves through one future.
  server::ServerOptions opts;
  opts.shards = 2;
  opts.threadsPerShard = 2;
  server::Server srv(opts);
  workload::GeneratedChip chip = makeChip(6);
  const layout::CellId top = chip.top;
  ASSERT_TRUE(srv.addLibrary("lib", std::move(chip.lib), tech::nmos()));

  const std::vector<CheckRequest> reqs = {
      CheckRequest::drc(top), CheckRequest::drc(/*root=*/99999),
      CheckRequest::ercCheck(top)};
  std::vector<CheckResult> out = srv.submitBatch("lib", reqs).get();
  ASSERT_EQ(out.size(), 3u);
  EXPECT_TRUE(out[0].ok()) << out[0].error;
  EXPECT_FALSE(out[1].ok());
  EXPECT_FALSE(out[1].error.empty());
  EXPECT_TRUE(out[2].ok()) << out[2].error;
  EXPECT_EQ(srv.stats().totalServed(), reqs.size());
}

TEST(Server, RollingDropLibraryUnderSubmitStorm) {
  // The CI stress shape: clients storm two libraries while another
  // thread rolls one of them (drop + re-add) repeatedly. Every future
  // must resolve — to a real result or a clean LibraryNotFound — and
  // the survivor library's results must stay byte-identical throughout.
  server::ServerOptions opts;
  opts.shards = 2;
  opts.threadsPerShard = 2;
  opts.queueCapacity = 128;
  server::Server srv(opts);

  workload::GeneratedChip stable = makeChip(6);
  const layout::CellId stableTop = stable.top;
  ASSERT_TRUE(srv.addLibrary("stable", std::move(stable.lib), tech::nmos()));
  {
    workload::GeneratedChip rolling = makeChip(7);
    ASSERT_TRUE(
        srv.addLibrary("rolling", std::move(rolling.lib), tech::nmos()));
  }
  const layout::CellId rollingTop = makeChip(7).top;

  const std::string refText = [&] {
    workload::GeneratedChip c = makeChip(6);
    Workspace ws(std::move(c.lib), tech::nmos(), {1});
    return ws.run(CheckRequest::ercCheck(stableTop)).report.text();
  }();

  std::atomic<bool> stop{false};
  std::thread roller([&] {
    for (int k = 0; k < 8; ++k) {
      srv.dropLibrary("rolling");
      workload::GeneratedChip c = makeChip(7);
      srv.addLibrary("rolling", std::move(c.lib), tech::nmos());
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    stop.store(true);
  });

  std::vector<std::thread> clients;
  std::mutex outMu;
  std::size_t served = 0, notFound = 0;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      std::size_t myServed = 0, myNotFound = 0;
      int k = 0;
      while (!stop.load()) {
        const bool toRolling = (k++ + c) % 2 == 0;
        CheckResult r =
            toRolling
                ? srv.submit("rolling", CheckRequest::ercCheck(rollingTop))
                      .get()
                : srv.submit("stable", CheckRequest::ercCheck(stableTop))
                      .get();
        if (r.ok()) {
          ++myServed;
          if (!toRolling) {
            EXPECT_EQ(r.report.text(), refText);
          }
        } else {
          EXPECT_EQ(r.error, server::kErrLibraryNotFound);
          ++myNotFound;
        }
      }
      std::lock_guard<std::mutex> lock(outMu);
      served += myServed;
      notFound += myNotFound;
    });
  }
  for (std::thread& t : clients) t.join();
  roller.join();
  EXPECT_GT(served, 0u);  // traffic flowed throughout the roll
  srv.shutdown();
  // Server-side accounting matches what the clients observed and
  // reconciles after the drain: completed requests are served,
  // accepted-but-dropped ones are failed, and nothing is left pending.
  const server::ServerStats st = srv.stats();
  EXPECT_EQ(st.totalServed(), served);
  EXPECT_EQ(st.totalFailed(), notFound);
  std::size_t submitted = 0;
  for (const server::ShardStats& sh : st.shards) submitted += sh.submitted;
  EXPECT_EQ(submitted, st.totalServed() + st.totalFailed());
}

// TSan stress: edit-carrying checks racing plain checks on one library.
// The shard's single serving thread serializes the requests themselves;
// what races is everything around them — two submitters hammering the
// queue and promise handoff, and each request's stages fanning out over
// the shared worker pool while the next request's edit application
// patches the same cached view and netlist. Every response must come
// back coherent: report byte-equal to the full-rebuild result for one
// of the two library states the toggle alternates between. (This test
// caught a cacheMu_/nlMu lock-order inversion between acquire()'s
// in-place patch and netlistFor's hit accounting.) Runs under the CI
// TSan filter ('Server.*').
TEST(Server, EditCheckRacesPlainChecks) {
  workload::GeneratedChip chip = makeChip(5);
  const layout::CellId top = chip.top;
  const layout::CellId block = chip.block;
  const tech::Technology t = tech::nmos();
  server::ServerOptions opts;
  opts.shards = 2;
  opts.threadsPerShard = 2;
  server::Server srv(opts);
  ASSERT_TRUE(srv.addLibrary("lib", chip.lib, t));

  // Full-rebuild oracle texts for the two states the toggle visits.
  const layout::Element e0 = std::as_const(chip.lib).cell(block).elements[0];
  const layout::Element e1 = e0.transformed(geom::translate({25, 0}));
  Workspace oracle(std::move(chip.lib), t, {1});
  const std::string text0 = oracle.run(CheckRequest::drc(top)).report.text();
  oracle.library().setElement(block, 0, e1);
  oracle.library().invalidateCaches();
  const std::string text1 = oracle.run(CheckRequest::drc(top)).report.text();

  constexpr int kPerThread = 40;
  std::vector<std::future<CheckResult>> editFutures, plainFutures;
  std::mutex mu;  // guards the future vectors across the two submitters
  std::thread editor([&] {
    for (int k = 0; k < kPerThread; ++k) {
      CheckRequest req = CheckRequest::drc(top);
      req.edits.push_back(
          EditOp::setElement(block, 0, (k & 1) != 0 ? e0 : e1));
      auto fut = srv.submit("lib", std::move(req));
      std::lock_guard<std::mutex> lock(mu);
      editFutures.push_back(std::move(fut));
    }
  });
  std::thread checker([&] {
    for (int k = 0; k < kPerThread; ++k) {
      auto fut = srv.submit("lib", CheckRequest::drc(top));
      std::lock_guard<std::mutex> lock(mu);
      plainFutures.push_back(std::move(fut));
    }
  });
  editor.join();
  checker.join();

  const auto coherent = [&](const std::string& text) {
    return text == text0 || text == text1;
  };
  for (auto& f : editFutures) {
    const CheckResult r = f.get();
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_TRUE(coherent(r.report.text()));
  }
  for (auto& f : plainFutures) {
    const CheckResult r = f.get();
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_TRUE(coherent(r.report.text()));
  }
  srv.shutdown();
}

// --- hot-library replication (placement API + load-aware routing) ------------

/// Replication knobs small enough that a test-sized trace promotes:
/// windows close every 8 served, promote at >= 4 in a window.
server::RoutingOptions testReplication() {
  server::RoutingOptions r;
  r.policy = server::RoutingPolicy::kLeastLoadedReplica;
  r.replicas = 2;
  r.heatWindow = 8;
  r.promoteServed = 4;
  r.demoteServed = 1;
  return r;
}

/// Requests this shard served for libraries it does not own — i.e.
/// requests actually answered by a read replica.
std::size_t replicaServedCount(const server::ServerStats& st) {
  std::size_t n = 0;
  for (std::size_t s = 0; s < st.shards.size(); ++s)
    for (const server::LibraryHeat& h : st.shards[s].heat)
      if (h.ownerShard != static_cast<int>(s)) n += h.served;
  return n;
}

/// The acceptance-criterion sweep: with replication enabled, every
/// response — across client-thread and shard counts, on a mixed trace
/// that includes edit-carrying requests — must be byte-identical to a
/// sequential single-owner Workspace replay of the same per-library
/// stream. Each library has exactly one client issuing its stream
/// sequentially (submit, await, compare), so the oracle state is
/// well-defined at every step; clients run concurrently across
/// libraries. Invalidate-before-deliver is what makes the read after an
/// edit correct even when the read lands on a replica.
void runReplicatedByteIdentity(int shards, int clients) {
  server::ServerOptions opts;
  opts.shards = shards;
  opts.threadsPerShard = 2;
  opts.routing = testReplication();
  server::Server srv(opts);
  const tech::Technology t = tech::nmos();

  struct Lib {
    std::string id;
    layout::CellId top{}, block{};
    std::unique_ptr<Workspace> oracle;
  };
  std::vector<Lib> libs(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    workload::GeneratedChip chip = makeChip(40 + static_cast<unsigned>(c));
    libs[c] = {workload::libraryName(c), chip.top, chip.block, nullptr};
    ASSERT_TRUE(srv.addLibrary(libs[c].id, chip.lib, t));
    libs[c].oracle = std::make_unique<Workspace>(std::move(chip.lib), t,
                                                 WorkspaceOptions{1});
  }

  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Lib& lib = libs[c];
      const layout::Element e0 =
          std::as_const(lib.oracle->library()).cell(lib.block).elements[0];
      const layout::Element e1 = e0.transformed(geom::translate({25, 0}));
      workload::TrafficOptions topt;
      topt.libraries = 1;
      topt.requests = 40;
      topt.seed = 500 + static_cast<std::uint64_t>(c);
      int k = 0;
      for (const workload::TrafficEvent& ev : workload::generateTrace(topt)) {
        CheckRequest req = workload::materialize(ev, lib.top);
        // Every 7th request carries an edit: it must pin to the owner,
        // invalidate the replicas, and keep the stream byte-identical.
        if (++k % 7 == 0)
          req.edits.push_back(
              EditOp::setElement(lib.block, 0, (k & 1) != 0 ? e1 : e0));
        const CheckResult got = srv.submit(lib.id, req).get();
        const CheckResult want = lib.oracle->run(req);
        ASSERT_EQ(got.ok(), want.ok()) << lib.id << " step " << k << ": "
                                       << got.error;
        EXPECT_EQ(got.report.text(), want.report.text())
            << lib.id << " step " << k;
        if (::testing::Test::HasFailure()) return;
      }
    });
  }
  for (std::thread& th : threads) th.join();
  srv.shutdown();

  const server::ServerStats st = srv.stats();
  EXPECT_EQ(st.totalServed(),
            static_cast<std::size_t>(clients) * 40u);
  // The multi-shard sweep must actually exercise replica serving — a
  // vacuously-green run (nothing ever promoted) would prove nothing.
  if (shards > 1) EXPECT_GT(replicaServedCount(st), 0u);
}

TEST(ServerReplication, ByteIdentity1Client1Shard) {
  runReplicatedByteIdentity(/*shards=*/1, /*clients=*/1);
}

TEST(ServerReplication, ByteIdentity8Clients4Shards) {
  runReplicatedByteIdentity(/*shards=*/4, /*clients=*/8);
}

TEST(ServerReplication, HotLibraryPromotesAndReplicasServe) {
  server::ServerOptions opts;
  opts.shards = 4;
  opts.threadsPerShard = 1;
  opts.routing = testReplication();
  server::Server srv(opts);
  workload::GeneratedChip chip = makeChip(50);
  const layout::CellId top = chip.top;

  workload::GeneratedChip ref = makeChip(50);
  Workspace oracle(std::move(ref.lib), tech::nmos(), {1});
  const std::string refText =
      oracle.run(CheckRequest::ercCheck(top)).report.text();

  ASSERT_TRUE(srv.addLibrary("hot", std::move(chip.lib), tech::nmos()));
  const int owner = srv.placementOf("hot").owner;

  // Sequential read-only hammering. Promotion decisions apply on the
  // owner's serving thread right after the window-closing job delivers,
  // so poll the placement between requests instead of assuming an exact
  // request count.
  server::Placement p;
  for (int k = 0; k < 200 && p.replicas.empty(); ++k) {
    CheckResult r = srv.submit("hot", CheckRequest::ercCheck(top)).get();
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_EQ(r.report.text(), refText);
    p = srv.placementOf("hot");
  }
  ASSERT_FALSE(p.replicas.empty()) << "library never promoted";
  EXPECT_EQ(p.owner, owner);
  EXPECT_EQ(p.policy, server::RoutingPolicy::kLeastLoadedReplica);
  EXPECT_LE(p.replicas.size(), 2u);
  for (int r : p.replicas) EXPECT_NE(r, owner);

  // With the placement live, further reads spread across the fresh
  // replicas (equal-load ties round-robin) and stay byte-identical.
  for (int k = 0; k < 24; ++k) {
    CheckResult r = srv.submit("hot", CheckRequest::ercCheck(top)).get();
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_EQ(r.report.text(), refText);
  }
  const server::ServerStats st = srv.stats();
  EXPECT_GT(replicaServedCount(st), 0u);
  std::size_t hostedReplicas = 0;
  for (const server::ShardStats& s : st.shards) hostedReplicas += s.replicas;
  EXPECT_EQ(hostedReplicas, p.replicas.size());
  // The stats surface reports the placement per heat entry.
  for (std::size_t s = 0; s < st.shards.size(); ++s)
    for (const server::LibraryHeat& h : st.shards[s].heat)
      EXPECT_EQ(h.ownerShard, owner) << "shard " << s;

  // dropLibrary reclaims the replicas with the owner.
  ASSERT_TRUE(srv.dropLibrary("hot"));
  EXPECT_TRUE(srv.placementOf("hot").replicas.empty());
  std::size_t afterDrop = 0;
  for (const server::ShardStats& s : srv.stats().shards)
    afterDrop += s.replicas;
  EXPECT_EQ(afterDrop, 0u);
}

TEST(ServerReplication, StaleReplicaFallsBackToOwnerAfterEdit) {
  server::ServerOptions opts;
  opts.shards = 4;
  opts.threadsPerShard = 1;
  opts.routing = testReplication();
  server::Server srv(opts);
  workload::GeneratedChip chip = makeChip(51);
  const layout::CellId top = chip.top;
  const layout::CellId block = chip.block;
  const tech::Technology t = tech::nmos();

  workload::GeneratedChip ref = makeChip(51);
  Workspace oracle(std::move(ref.lib), t, {1});
  const std::string preText =
      oracle.run(CheckRequest::drc(top)).report.text();

  ASSERT_TRUE(srv.addLibrary("lib", chip.lib, t));

  // Drive to promotion.
  server::Placement p;
  for (int k = 0; k < 200 && p.replicas.empty(); ++k) {
    ASSERT_TRUE(srv.submit("lib", CheckRequest::drc(top)).get().ok());
    p = srv.placementOf("lib");
  }
  ASSERT_FALSE(p.replicas.empty()) << "library never promoted";

  // Find an edit whose effect is observable in the top-level DRC report
  // (a small nudge can be violation-neutral on some seeds), probing on
  // fresh oracle copies so the real oracle stays untouched.
  const layout::Element e0 =
      std::as_const(chip.lib).cell(block).elements[0];
  layout::Element edited;
  std::string postText;
  for (const int dx : {25, 250, 2500, 12500}) {
    const layout::Element cand = e0.transformed(geom::translate({dx, 0}));
    workload::GeneratedChip probe = makeChip(51);
    Workspace w(std::move(probe.lib), t, {1});
    w.library().setElement(block, 0, cand);
    w.library().invalidateCaches();
    std::string txt = w.run(CheckRequest::drc(top)).report.text();
    if (txt != preText) {
      edited = cand;
      postText = std::move(txt);
      break;
    }
  }
  ASSERT_FALSE(postText.empty()) << "no observable edit found";

  // An owner edit invalidates every replica *before* the edit's result
  // delivers: once the await returns, the placement lists no fresh
  // replicas — they exist but receive no traffic.
  CheckRequest editReq = CheckRequest::drc(top);
  editReq.edits.push_back(EditOp::setElement(block, 0, edited));
  const CheckResult editRes = srv.submit("lib", editReq).get();
  ASSERT_TRUE(editRes.ok()) << editRes.error;
  EXPECT_TRUE(srv.placementOf("lib").replicas.empty());
  EXPECT_EQ(editRes.report.text(), postText);

  // Every subsequent read falls back to the owner until the replicas
  // are re-snapshotted at a window boundary — never a stale byte. Once
  // traffic re-promotes/refreshes, replica-served reads must carry the
  // *post-edit* snapshot, so the stream stays byte-identical throughout.
  bool refreshed = false;
  for (int k = 0; k < 200; ++k) {
    const CheckResult r = srv.submit("lib", CheckRequest::drc(top)).get();
    ASSERT_TRUE(r.ok()) << r.error;
    ASSERT_EQ(r.report.text(), postText) << "read " << k;
    if (!srv.placementOf("lib").replicas.empty()) {
      refreshed = true;
      if (k > 40) break;  // served well past the refresh — enough proof
    }
  }
  EXPECT_TRUE(refreshed) << "replicas never re-snapshotted";
}

// Coherence under racing edits with replication on: same contract as
// EditCheckRacesPlainChecks — every response byte-equal to one of the
// two states the toggle alternates between — now with reads allowed to
// land on (fresh-at-routing-time) replica snapshots. Runs under the CI
// TSan filter ('ServerReplication.*') and doubles as the stale-race
// stress for the placement maps and snapshot handoff.
TEST(ServerReplication, EditCheckRacesPlainChecks) {
  workload::GeneratedChip chip = makeChip(5);
  const layout::CellId top = chip.top;
  const layout::CellId block = chip.block;
  const tech::Technology t = tech::nmos();
  server::ServerOptions opts;
  opts.shards = 4;
  opts.threadsPerShard = 2;
  opts.routing = testReplication();
  server::Server srv(opts);
  ASSERT_TRUE(srv.addLibrary("lib", chip.lib, t));

  const layout::Element e0 = std::as_const(chip.lib).cell(block).elements[0];
  const layout::Element e1 = e0.transformed(geom::translate({25, 0}));
  Workspace oracle(std::move(chip.lib), t, {1});
  const std::string text0 = oracle.run(CheckRequest::drc(top)).report.text();
  oracle.library().setElement(block, 0, e1);
  oracle.library().invalidateCaches();
  const std::string text1 = oracle.run(CheckRequest::drc(top)).report.text();

  constexpr int kPerThread = 40;
  std::vector<std::future<CheckResult>> editFutures, plainFutures;
  std::mutex mu;
  std::thread editor([&] {
    for (int k = 0; k < kPerThread; ++k) {
      CheckRequest req = CheckRequest::drc(top);
      req.edits.push_back(
          EditOp::setElement(block, 0, (k & 1) != 0 ? e0 : e1));
      auto fut = srv.submit("lib", std::move(req));
      std::lock_guard<std::mutex> lock(mu);
      editFutures.push_back(std::move(fut));
    }
  });
  std::thread checker([&] {
    for (int k = 0; k < kPerThread; ++k) {
      auto fut = srv.submit("lib", CheckRequest::drc(top));
      std::lock_guard<std::mutex> lock(mu);
      plainFutures.push_back(std::move(fut));
    }
  });
  editor.join();
  checker.join();

  const auto coherent = [&](const std::string& text) {
    return text == text0 || text == text1;
  };
  for (auto& f : editFutures) {
    const CheckResult r = f.get();
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_TRUE(coherent(r.report.text()));
  }
  for (auto& f : plainFutures) {
    const CheckResult r = f.get();
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_TRUE(coherent(r.report.text()));
  }
  srv.shutdown();
}

TEST(ServerReplication, FlatOptionAliasesStillSteerTheNestedGroups) {
  // The deprecated flat knobs keep working: set away from their
  // defaults (while the nested group is untouched) they are copied into
  // ServerOptions::queue, and the aliases mirror the effective values.
  server::ServerOptions opts;
  opts.shards = 1;
  opts.threadsPerShard = 1;
  opts.queueCapacity = 1;
  opts.overflow = server::OverflowPolicy::kReject;
  server::Server srv(opts);
  const server::ServerOptions& eff = srv.options();
  EXPECT_EQ(eff.queue.capacity, 1u);
  EXPECT_EQ(eff.queue.overflow, server::OverflowPolicy::kReject);
  EXPECT_EQ(eff.queueCapacity, 1u);
  EXPECT_EQ(eff.overflow, server::OverflowPolicy::kReject);

  // Nested settings win outright when they are the ones set.
  server::ServerOptions opts2;
  opts2.shards = 1;
  opts2.threadsPerShard = 1;
  opts2.queue.capacity = 7;
  opts2.queue.overflow = server::OverflowPolicy::kReject;
  server::Server srv2(opts2);
  EXPECT_EQ(srv2.options().queue.capacity, 7u);
  EXPECT_EQ(srv2.options().queueCapacity, 7u);
  EXPECT_EQ(srv2.options().queue.overflow, server::OverflowPolicy::kReject);
}

// --- the Workspace LRU cap the server relies on ------------------------------

TEST(WorkspaceLru, UnboundedByDefault) {
  workload::GeneratedChip chip = makeChip(8);
  Workspace ws(std::move(chip.lib), tech::nmos(), {1});
  ASSERT_TRUE(ws.run(CheckRequest::drc(chip.top)).ok());
  ASSERT_TRUE(ws.run(CheckRequest::drc(chip.block)).ok());
  const Workspace::CacheStats s = ws.cacheStats();
  EXPECT_EQ(s.cachedViews, 2u);
  EXPECT_EQ(s.lruEvictions, 0u);
  EXPECT_GT(s.cacheBytes, 0u);
}

TEST(WorkspaceLru, EvictsColdestRootAndStaysUnderCap) {
  // Measure the two roots' accounted footprints first, then cap the
  // cache so exactly one fits: serving the second root must evict the
  // first (the coldest), keep accounted bytes under the cap, and a
  // re-submit of the evicted root must rebuild byte-identically.
  const workload::ChipParams p = {1, 1, 2, 2, true};
  std::size_t bytesTop = 0, bytesBlock = 0;
  std::string refTop;
  layout::CellId top{}, block{};
  {
    workload::GeneratedChip chip = makeChip(9, p);
    top = chip.top;
    block = chip.block;
    Workspace ws(std::move(chip.lib), tech::nmos(), {1});
    const CheckResult r = ws.run(CheckRequest::drc(top));
    ASSERT_TRUE(r.ok());
    refTop = r.report.text();
    bytesTop = ws.cacheStats().cacheBytes;
    ASSERT_TRUE(ws.run(CheckRequest::drc(block)).ok());
    bytesBlock = ws.cacheStats().cacheBytes - bytesTop;
    ASSERT_GT(bytesTop, 0u);
    ASSERT_GT(bytesBlock, 0u);
  }

  workload::GeneratedChip chip = makeChip(9, p);
  WorkspaceOptions wopts;
  wopts.threads = 1;
  // Room for the larger root alone, not for both.
  wopts.maxCacheBytes = std::max(bytesTop, bytesBlock) + bytesTop / 8;
  ASSERT_LT(wopts.maxCacheBytes, bytesTop + bytesBlock);
  Workspace ws(std::move(chip.lib), tech::nmos(), wopts);

  ASSERT_TRUE(ws.run(CheckRequest::drc(top)).ok());
  {
    const Workspace::CacheStats s = ws.cacheStats();
    EXPECT_EQ(s.cachedViews, 1u);
    EXPECT_EQ(s.lruEvictions, 0u);
    EXPECT_LE(s.cacheBytes, wopts.maxCacheBytes);
  }

  // Root `block` becomes MRU; `top` is the coldest and must go.
  ASSERT_TRUE(ws.run(CheckRequest::drc(block)).ok());
  {
    const Workspace::CacheStats s = ws.cacheStats();
    EXPECT_EQ(s.cachedViews, 1u);
    EXPECT_EQ(s.lruEvictions, 1u);
    EXPECT_LE(s.cacheBytes, wopts.maxCacheBytes);
  }

  // The evicted root rebuilds transparently and byte-identically.
  const CheckResult again = ws.run(CheckRequest::drc(top));
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again.viewCacheHit);  // it was evicted, not cached
  EXPECT_EQ(again.report.text(), refTop);
  {
    const Workspace::CacheStats s = ws.cacheStats();
    EXPECT_EQ(s.lruEvictions, 2u);  // block went cold in turn
    EXPECT_LE(s.cacheBytes, wopts.maxCacheBytes);
  }
}

TEST(WorkspaceLru, ServerEnforcesPerLibraryCap) {
  // End to end through the server: a shard library with a tiny cap
  // serves alternating roots; the cache never holds both.
  const workload::ChipParams p = {1, 1, 2, 2, true};
  std::size_t oneRoot = 0;
  layout::CellId top{}, block{};
  {
    workload::GeneratedChip chip = makeChip(11, p);
    top = chip.top;
    block = chip.block;
    Workspace ws(std::move(chip.lib), tech::nmos(), {1});
    ASSERT_TRUE(ws.run(CheckRequest::drc(top)).ok());
    oneRoot = ws.cacheStats().cacheBytes;
  }

  server::ServerOptions opts;
  opts.shards = 1;
  opts.threadsPerShard = 1;
  opts.maxCacheBytesPerLibrary = oneRoot + oneRoot / 2;
  server::Server srv(opts);
  workload::GeneratedChip chip = makeChip(11, p);
  ASSERT_TRUE(srv.addLibrary("lib", std::move(chip.lib), tech::nmos()));

  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(srv.submit("lib", CheckRequest::drc(top)).get().ok());
    ASSERT_TRUE(srv.submit("lib", CheckRequest::drc(block)).get().ok());
  }
  const server::ServerStats st = srv.stats();
  ASSERT_EQ(st.shards.size(), 1u);
  EXPECT_LE(st.shards[0].cacheBytes, opts.maxCacheBytesPerLibrary);
  EXPECT_EQ(st.shards[0].served, 6u);
}

}  // namespace
}  // namespace dic
