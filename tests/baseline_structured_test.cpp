// Tests for the mask-level baseline checker and the structured-design
// checks: exactly the false/unchecked error behaviours the paper predicts.
#include <gtest/gtest.h>

#include "baseline/flat_drc.hpp"
#include "structured/structured.hpp"
#include "workload/generator.hpp"
#include "workload/inject.hpp"

namespace dic {
namespace {

using geom::makeRect;
using layout::makeBox;
using layout::makeWire;

class BaselineTest : public ::testing::Test {
 protected:
  tech::Technology t = tech::nmos();
  const int nm = *t.layerByName("metal");
  const int nd = *t.layerByName("diff");
  const int np = *t.layerByName("poly");
  const int nc = *t.layerByName("contact");
  const geom::Coord L = t.lambda();
};

TEST_F(BaselineTest, CleanGeometryPasses) {
  layout::Library lib;
  layout::Cell top;
  top.name = "top";
  top.elements.push_back(makeBox(nm, makeRect(0, 0, 10 * L, 3 * L)));
  top.elements.push_back(makeBox(nm, makeRect(0, 6 * L, 10 * L, 9 * L)));
  const auto root = lib.addCell(std::move(top));
  EXPECT_TRUE(baseline::check(lib, root, t).empty());
}

TEST_F(BaselineTest, RealSpacingCaught) {
  layout::Library lib;
  layout::Cell top;
  top.name = "top";
  top.elements.push_back(makeBox(nm, makeRect(0, 0, 10 * L, 3 * L)));
  top.elements.push_back(makeBox(nm, makeRect(0, 4 * L, 10 * L, 7 * L)));
  const auto root = lib.addCell(std::move(top));
  const auto rep = baseline::check(lib, root, t);
  EXPECT_EQ(rep.count(report::Category::kSpacing), 1u);
}

TEST_F(BaselineTest, SameNetDecoyIsFalseError) {
  // The same two boxes, now labelled as one net: still flagged (the
  // baseline has no nets) -- the Fig. 5a false error.
  layout::Library lib;
  layout::Cell top;
  top.name = "top";
  top.elements.push_back(makeBox(nm, makeRect(0, 0, 10 * L, 3 * L), "A"));
  top.elements.push_back(
      makeBox(nm, makeRect(0, 4 * L, 10 * L, 7 * L), "A"));
  const auto root = lib.addCell(std::move(top));
  const auto rep = baseline::check(lib, root, t);
  EXPECT_EQ(rep.count(report::Category::kSpacing), 1u);
}

TEST_F(BaselineTest, AccidentalTransistorUnchecked) {
  // Poly overlapping diff "forms a legal transistor" at mask level.
  layout::Library lib;
  layout::Cell top;
  top.name = "top";
  top.elements.push_back(makeWire(nd, {{0, 0}, {20 * L, 0}}, 2 * L));
  top.elements.push_back(
      makeWire(np, {{10 * L, -10 * L}, {10 * L, 10 * L}}, 2 * L));
  const auto root = lib.addCell(std::move(top));
  const auto rep = baseline::check(lib, root, t);
  EXPECT_TRUE(rep.empty()) << rep.text();
}

TEST_F(BaselineTest, PolyDiffNearMissIsFlagged) {
  // Not overlapping, 0.5L apart: a genuine inter-layer spacing error the
  // baseline does catch.
  layout::Library lib;
  layout::Cell top;
  top.name = "top";
  top.elements.push_back(makeBox(nd, makeRect(0, 0, 10 * L, 2 * L)));
  top.elements.push_back(
      makeBox(np, makeRect(0, 2 * L + L / 2, 10 * L, 4 * L + L / 2)));
  const auto root = lib.addCell(std::move(top));
  const auto rep = baseline::check(lib, root, t);
  EXPECT_EQ(rep.count(report::Category::kSpacing), 1u) << rep.text();
}

TEST_F(BaselineTest, ContactOverGateLooksLikeButtingContact) {
  // Cut enclosed by poly, diff and metal: passes at mask level even
  // though it sits on a transistor gate (Fig. 7's unchecked error).
  layout::Library lib;
  layout::Cell top;
  top.name = "top";
  top.elements.push_back(makeBox(np, makeRect(-3 * L, -L, 3 * L, L)));
  top.elements.push_back(makeBox(nd, makeRect(-2 * L, -3 * L, 2 * L, 3 * L)));
  top.elements.push_back(makeBox(nm, makeRect(-2 * L, -2 * L, 2 * L, 2 * L)));
  top.elements.push_back(makeBox(nc, makeRect(-L, -L, L, L)));
  const auto root = lib.addCell(std::move(top));
  const auto rep = baseline::check(lib, root, t);
  EXPECT_EQ(rep.count(report::Category::kDevice), 0u) << rep.text();
}

TEST_F(BaselineTest, BareContactCaught) {
  layout::Library lib;
  layout::Cell top;
  top.name = "top";
  top.elements.push_back(makeBox(nc, makeRect(-L, -L, L, L)));
  top.elements.push_back(makeBox(nm, makeRect(-2 * L, -2 * L, 2 * L, 2 * L)));
  const auto root = lib.addCell(std::move(top));
  const auto rep = baseline::check(lib, root, t);  // no poly/diff landing
  EXPECT_EQ(rep.count(report::Category::kDevice), 1u);
}

TEST_F(BaselineTest, ButtingHalvesUnchecked) {
  // Two half-width boxes unioned at mask level look legal (Fig. 2/15).
  layout::Library lib;
  layout::Cell top;
  top.name = "top";
  top.elements.push_back(
      makeBox(nm, makeRect(0, 0, 6 * L, 3 * L / 2)));
  top.elements.push_back(
      makeBox(nm, makeRect(0, 3 * L / 2, 6 * L, 3 * L)));
  const auto root = lib.addCell(std::move(top));
  const auto rep = baseline::check(lib, root, t);
  EXPECT_TRUE(rep.empty()) << rep.text();
}

TEST_F(BaselineTest, EuclideanModeFlagsCorners) {
  // Fig. 4: in Euclidean mode a perfectly legal box gets 4 corner flags.
  layout::Library lib;
  layout::Cell top;
  top.name = "top";
  top.elements.push_back(makeBox(nm, makeRect(0, 0, 10 * L, 10 * L)));
  const auto root = lib.addCell(std::move(top));
  baseline::Options o;
  o.metric = geom::Metric::kEuclidean;
  const auto rep = baseline::check(lib, root, t, o);
  EXPECT_EQ(rep.count(report::Category::kWidth), 4u);
}

// --- structured checks --------------------------------------------------------

class StructuredTest : public BaselineTest {};

TEST_F(StructuredTest, ImplicitDeviceDetected) {
  layout::Library lib;
  layout::Cell top;
  top.name = "top";
  top.elements.push_back(makeWire(nd, {{0, 0}, {20 * L, 0}}, 2 * L));
  top.elements.push_back(
      makeWire(np, {{10 * L, -10 * L}, {10 * L, 10 * L}}, 2 * L));
  const auto root = lib.addCell(std::move(top));
  const auto rep = structured::checkImplicitDevices(lib, root, t);
  ASSERT_EQ(rep.count(report::Category::kImplicitDevice), 1u);
}

TEST_F(StructuredTest, DeclaredTransistorNotFlagged) {
  layout::Library lib;
  const workload::NmosCells cells = workload::installNmosCells(lib, t);
  layout::Cell top;
  top.name = "top";
  top.instances.push_back({cells.tran, {geom::Orient::kR0, {0, 0}}, "t"});
  const auto root = lib.addCell(std::move(top));
  const auto rep = structured::checkImplicitDevices(lib, root, t);
  EXPECT_TRUE(rep.empty()) << rep.text();
}

TEST_F(StructuredTest, StrayContactOverDeclaredGate) {
  layout::Library lib;
  const workload::NmosCells cells = workload::installNmosCells(lib, t);
  layout::Cell top;
  top.name = "top";
  top.instances.push_back({cells.tran, {geom::Orient::kR0, {0, 0}}, "t"});
  top.elements.push_back(makeBox(nc, makeRect(-L, -L, L, L)));
  const auto root = lib.addCell(std::move(top));
  const auto rep = structured::checkImplicitDevices(lib, root, t);
  EXPECT_EQ(rep.count(report::Category::kContactOverGate), 1u) << rep.text();
}

TEST_F(StructuredTest, SelfSufficiencyButtingHalves) {
  layout::Library lib;
  layout::Cell top;
  top.name = "top";
  top.elements.push_back(makeBox(nm, makeRect(0, 0, 6 * L, 3 * L / 2)));
  top.elements.push_back(makeBox(nm, makeRect(0, 3 * L / 2, 6 * L, 3 * L)));
  const auto root = lib.addCell(std::move(top));
  const auto rep = structured::checkSelfSufficiency(lib, root, t);
  EXPECT_GE(rep.count(report::Category::kSelfSufficiency), 1u);
}

TEST_F(StructuredTest, OverlappedLegalSymbolsPass) {
  // Fig. 15 right: "include a legal width box in each symbol and ...
  // overlap the symbols".
  layout::Library lib;
  layout::Cell top;
  top.name = "top";
  top.elements.push_back(makeBox(nm, makeRect(0, 0, 10 * L, 3 * L)));
  top.elements.push_back(makeBox(nm, makeRect(8 * L, 0, 18 * L, 3 * L)));
  const auto root = lib.addCell(std::move(top));
  EXPECT_TRUE(structured::checkSelfSufficiency(lib, root, t).empty());
}

TEST_F(StructuredTest, LocalityOfGeneratedChip) {
  workload::GeneratedChip chip = workload::generateChip(
      t, {.blockRows = 1, .blockCols = 2, .invRows = 2, .invCols = 2,
          .withPads = false});
  const auto stats = structured::measureLocality(chip.lib, chip.top);
  EXPECT_GE(stats.cells, 3u);
}

}  // namespace
}  // namespace dic
