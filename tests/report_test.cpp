// Tests for the violation report model and the Fig. 1 scorer.
#include <gtest/gtest.h>

#include "report/scorer.hpp"
#include "report/violation.hpp"

namespace dic::report {
namespace {

Violation v(Category c, geom::Rect where, std::string rule = "R") {
  Violation out;
  out.category = c;
  out.where = where;
  out.rule = std::move(rule);
  return out;
}

TEST(Report, CountsByCategory) {
  Report r;
  r.add(v(Category::kWidth, geom::makeRect(0, 0, 1, 1)));
  r.add(v(Category::kWidth, geom::makeRect(5, 5, 6, 6)));
  r.add(v(Category::kSpacing, geom::makeRect(9, 9, 10, 10)));
  EXPECT_EQ(r.count(), 3u);
  EXPECT_EQ(r.count(Category::kWidth), 2u);
  EXPECT_EQ(r.count(Category::kSpacing), 1u);
  EXPECT_EQ(r.count(Category::kDevice), 0u);
  EXPECT_FALSE(r.empty());
}

TEST(Report, MergeAppends) {
  Report a, b;
  a.add(v(Category::kWidth, geom::makeRect(0, 0, 1, 1)));
  b.add(v(Category::kSpacing, geom::makeRect(0, 0, 1, 1)));
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
}

TEST(Report, TextContainsRuleAndSeverity) {
  Report r;
  Violation x = v(Category::kWidth, geom::makeRect(0, 0, 10, 10), "W.metal");
  x.message = "too narrow";
  x.cell = "inv";
  r.add(x);
  const std::string s = r.text();
  EXPECT_NE(s.find("ERROR"), std::string::npos);
  EXPECT_NE(s.find("W.metal"), std::string::npos);
  EXPECT_NE(s.find("too narrow"), std::string::npos);
  EXPECT_NE(s.find("inv"), std::string::npos);
}

TEST(Report, JsonWellFormedAndEscaped) {
  Report r;
  Violation x = v(Category::kSpacing, geom::makeRect(-5, 0, 5, 9), "S\"x\"");
  x.message = "back\\slash";
  r.add(x);
  const std::string j = r.json();
  EXPECT_EQ(j.front(), '[');
  EXPECT_EQ(j.back(), ']');
  EXPECT_NE(j.find("\"S\\\"x\\\"\""), std::string::npos);
  EXPECT_NE(j.find("back\\\\slash"), std::string::npos);
  EXPECT_NE(j.find("[-5,0,5,9]"), std::string::npos);
}

TEST(Report, EmptyJsonIsEmptyArray) {
  EXPECT_EQ(Report().json(), "[]");
}

TEST(Scorer, ToleranceControlsMatching) {
  Report r;
  r.add(v(Category::kWidth, geom::makeRect(20, 0, 30, 10)));
  const std::vector<GroundTruth> truths = {
      {Category::kWidth, geom::makeRect(0, 0, 10, 10), true, ""}};
  EXPECT_EQ(score(truths, r, 5).realFlagged, 0u);
  EXPECT_EQ(score(truths, r, 5).falseErrors, 1u);
  EXPECT_EQ(score(truths, r, 10).realFlagged, 1u);
  EXPECT_EQ(score(truths, r, 10).falseErrors, 0u);
}

TEST(Scorer, CategoryFamiliesMatch) {
  // Self-sufficiency truths match width reports (the baseline sees them
  // that way when it sees them at all).
  Report r;
  r.add(v(Category::kWidth, geom::makeRect(0, 0, 10, 10)));
  const std::vector<GroundTruth> truths = {
      {Category::kSelfSufficiency, geom::makeRect(0, 0, 10, 10), true, ""}};
  EXPECT_EQ(score(truths, r, 2).realFlagged, 1u);
}

TEST(Scorer, SymptomNearRealDefectIsNotFalse) {
  // A second, differently-categorized report at the same location is a
  // symptom, not a false error.
  Report r;
  r.add(v(Category::kContactOverGate, geom::makeRect(0, 0, 10, 10)));
  r.add(v(Category::kSpacing, geom::makeRect(2, 2, 8, 8)));
  const std::vector<GroundTruth> truths = {
      {Category::kContactOverGate, geom::makeRect(0, 0, 10, 10), true, ""}};
  const VennCounts c = score(truths, r, 2);
  EXPECT_EQ(c.realFlagged, 1u);
  EXPECT_EQ(c.falseErrors, 0u);
}

TEST(Scorer, ElectricalMatchesByCategoryOnly) {
  Report r;
  r.add(v(Category::kElectrical, geom::Rect{}));  // no location (ERC)
  const std::vector<GroundTruth> truths = {
      {Category::kElectrical, geom::makeRect(5000, 5000, 6000, 6000), true,
       ""}};
  const VennCounts c = score(truths, r, 2);
  EXPECT_EQ(c.realFlagged, 1u);
  EXPECT_EQ(c.falseErrors, 0u);
}

TEST(Scorer, DecoysAreNotRealErrors) {
  Report r;  // silence
  const std::vector<GroundTruth> truths = {
      {Category::kSpacing, geom::makeRect(0, 0, 10, 10), false, "decoy"}};
  const VennCounts c = score(truths, r, 2);
  EXPECT_EQ(c.totalReal, 0u);
  EXPECT_EQ(c.realUnchecked, 0u);
  EXPECT_EQ(c.falseErrors, 0u);
  EXPECT_DOUBLE_EQ(c.coverage(), 1.0);
}

TEST(Scorer, RatioAndCoverageEdgeCases) {
  VennCounts c;
  c.falseErrors = 7;
  c.realFlagged = 0;
  EXPECT_DOUBLE_EQ(c.falseToRealRatio(), 7.0);
  c.realFlagged = 2;
  EXPECT_DOUBLE_EQ(c.falseToRealRatio(), 3.5);
}

TEST(CategoryNames, AllDistinct) {
  const Category all[] = {
      Category::kWidth,          Category::kSpacing,
      Category::kConnection,     Category::kDevice,
      Category::kImplicitDevice, Category::kContactOverGate,
      Category::kSelfSufficiency, Category::kElectrical,
      Category::kOther};
  for (const Category a : all) {
    for (const Category b : all) {
      if (a != b) {
        EXPECT_NE(toString(a), toString(b));
      }
    }
  }
}

}  // namespace
}  // namespace dic::report
