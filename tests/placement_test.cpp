// Unit tests for the pure routing-policy layer (server/placement.hpp):
// replica eligibility, deterministic least-loaded choice with round-robin
// tie-breaking, and the HeatTracker's count-based promote/demote
// hysteresis. Everything here runs without a Server, threads, or queues —
// the policy is plain synchronous code by design.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "server/placement.hpp"
#include "service/workspace.hpp"

namespace dic {
namespace {

using server::HeatTracker;
using server::Placement;
using server::RoutingOptions;
using server::RoutingPolicy;

TEST(Placement, PolicyNames) {
  EXPECT_EQ(toString(RoutingPolicy::kHash), "hash");
  EXPECT_EQ(toString(RoutingPolicy::kLeastLoadedReplica),
            "least-loaded-replica");
}

TEST(Placement, ReplicaEligibilityIsNoEditsAnywhere) {
  // Read-only submissions qualify; one edit anywhere pins the whole
  // submission (a batch is one queue job on one shard) to the owner.
  EXPECT_TRUE(server::replicaEligible({}));  // vacuously: nothing edits
  EXPECT_TRUE(server::replicaEligible({CheckRequest::drc(1)}));
  EXPECT_TRUE(server::replicaEligible(
      {CheckRequest::drc(1), CheckRequest::ercCheck(1),
       CheckRequest::netlistOnly(1)}));

  CheckRequest edit = CheckRequest::drc(1);
  edit.edits.push_back(EditOp::setElement(1, 0, layout::Element{}));
  EXPECT_FALSE(server::replicaEligible({edit}));
  EXPECT_FALSE(server::replicaEligible(
      {CheckRequest::drc(1), edit, CheckRequest::ercCheck(1)}));
}

TEST(Placement, PickLeastLoadedMinimumWins) {
  Placement p;
  p.owner = 0;
  p.replicas = {1, 2};
  // Distinct loads: the unique minimum wins regardless of the tick.
  const std::vector<std::size_t> load = {5, 1, 3};
  for (std::uint64_t tick = 0; tick < 7; ++tick)
    EXPECT_EQ(server::pickLeastLoaded(p, load, tick), 1);
}

TEST(Placement, PickLeastLoadedOwnerPreferredAtTickZero) {
  Placement p;
  p.owner = 2;
  p.replicas = {0, 3};
  // All tied: candidate order is owner first, then replicas as given.
  const std::vector<std::size_t> load = {4, 4, 4, 4};
  EXPECT_EQ(server::pickLeastLoaded(p, load, 0), 2);
  EXPECT_EQ(server::pickLeastLoaded(p, load, 1), 0);
  EXPECT_EQ(server::pickLeastLoaded(p, load, 2), 3);
  EXPECT_EQ(server::pickLeastLoaded(p, load, 3), 2);  // wraps — deterministic
}

TEST(Placement, PickLeastLoadedTieBreakIsDeterministic) {
  Placement p;
  p.owner = 0;
  p.replicas = {1, 2, 3};
  const std::vector<std::size_t> load = {2, 9, 2, 2};  // {0, 2, 3} tied
  // Same tick, same answer; successive ticks cycle the tied candidates.
  for (int repeat = 0; repeat < 3; ++repeat) {
    EXPECT_EQ(server::pickLeastLoaded(p, load, 0), 0);
    EXPECT_EQ(server::pickLeastLoaded(p, load, 1), 2);
    EXPECT_EQ(server::pickLeastLoaded(p, load, 2), 3);
  }
}

TEST(Placement, PickLeastLoadedSkipsOutOfRangeAndFallsBackToOwner) {
  Placement p;
  p.owner = 0;
  p.replicas = {7};  // stale bookkeeping beyond the load vector
  const std::vector<std::size_t> load = {3};
  EXPECT_EQ(server::pickLeastLoaded(p, load, 0), 0);
  EXPECT_EQ(server::pickLeastLoaded(p, load, 1), 0);

  // No valid candidate at all: the owner comes back untouched.
  Placement bare;
  bare.owner = 4;
  EXPECT_EQ(server::pickLeastLoaded(bare, {}, 0), 4);
}

RoutingOptions smallWindow() {
  RoutingOptions r;
  r.heatWindow = 8;
  r.promoteServed = 5;
  r.demoteServed = 2;
  return r;
}

TEST(HeatTracker, PromotesAtThresholdWhenWindowCloses) {
  HeatTracker t(smallWindow());
  // 7 served: window (8) not full yet — no decisions, no state change.
  for (int k = 0; k < 7; ++k)
    EXPECT_TRUE(t.recordServed("hot").empty());
  EXPECT_FALSE(t.isHot("hot"));
  EXPECT_EQ(t.windowFill(), 7u);

  // The 8th close the window: "hot" served 8 >= promoteServed.
  const std::vector<HeatTracker::Decision> d = t.recordServed("hot");
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d[0].id, "hot");
  EXPECT_TRUE(d[0].promote);
  EXPECT_TRUE(t.isHot("hot"));
  EXPECT_EQ(t.windowFill(), 0u);  // the "evaluation just ran" signal
}

TEST(HeatTracker, ColdLibraryBelowThresholdNeverPromotes) {
  HeatTracker t(smallWindow());
  // Two libraries split the window 4/4 — both below promoteServed (5).
  std::vector<HeatTracker::Decision> last;
  for (int k = 0; k < 8; ++k)
    last = t.recordServed((k & 1) != 0 ? "a" : "b");
  EXPECT_TRUE(last.empty());
  EXPECT_FALSE(t.isHot("a"));
  EXPECT_FALSE(t.isHot("b"));
}

TEST(HeatTracker, HysteresisBandDoesNotFlap) {
  HeatTracker t(smallWindow());
  // Promote "x" with a full window of its own traffic.
  std::vector<HeatTracker::Decision> d;
  for (int k = 0; k < 8; ++k) d = t.recordServed("x");
  ASSERT_EQ(d.size(), 1u);
  ASSERT_TRUE(d[0].promote);

  // Heat drops into the band (4: demote at <= 2, promote at >= 5).
  // Window after window, no decision is emitted — that silence is the
  // hysteresis; a library hovering near one threshold never flaps. The
  // filler traffic is split so neither filler crosses promoteServed.
  for (int window = 0; window < 4; ++window) {
    for (int k = 0; k < 4; ++k) d = t.recordServed("x");
    for (int k = 0; k < 2; ++k) d = t.recordServed("f1");
    for (int k = 0; k < 2; ++k) d = t.recordServed("f2");
    EXPECT_TRUE(d.empty()) << "window " << window;
    EXPECT_TRUE(t.isHot("x"));
  }
}

TEST(HeatTracker, DemotesAtThresholdIncludingAbsentLibraries) {
  HeatTracker t(smallWindow());
  std::vector<HeatTracker::Decision> d;
  for (int k = 0; k < 8; ++k) d = t.recordServed("x");
  ASSERT_EQ(d.size(), 1u);
  ASSERT_TRUE(d[0].promote);

  // A window "x" never appears in still evaluates it: 0 <= demoteServed.
  for (int k = 0; k < 8; ++k) d = t.recordServed("other");
  ASSERT_EQ(d.size(), 2u);  // "other" promotes, "x" demotes — id order
  EXPECT_EQ(d[0].id, "other");
  EXPECT_TRUE(d[0].promote);
  EXPECT_EQ(d[1].id, "x");
  EXPECT_FALSE(d[1].promote);
  EXPECT_FALSE(t.isHot("x"));
  EXPECT_TRUE(t.isHot("other"));
}

TEST(HeatTracker, RePromotionAfterDemotionWorks) {
  HeatTracker t(smallWindow());
  std::vector<HeatTracker::Decision> d;
  for (int k = 0; k < 8; ++k) d = t.recordServed("x");
  ASSERT_TRUE(d.size() == 1 && d[0].promote);
  for (int k = 0; k < 8; ++k) d = t.recordServed("y");  // demotes x
  ASSERT_TRUE(t.isHot("y"));
  ASSERT_FALSE(t.isHot("x"));
  for (int k = 0; k < 8; ++k) d = t.recordServed("x");  // re-promote
  ASSERT_EQ(d.size(), 2u);
  EXPECT_EQ(d[0].id, "x");
  EXPECT_TRUE(d[0].promote);
  EXPECT_EQ(d[1].id, "y");
  EXPECT_FALSE(d[1].promote);
}

TEST(HeatTracker, ForgetDropsAllState) {
  HeatTracker t(smallWindow());
  std::vector<HeatTracker::Decision> d;
  for (int k = 0; k < 8; ++k) d = t.recordServed("x");
  ASSERT_TRUE(t.isHot("x"));
  t.forget("x");
  EXPECT_FALSE(t.isHot("x"));
  // The next window never mentions the forgotten library.
  for (int k = 0; k < 8; ++k) d = t.recordServed("other");
  for (const HeatTracker::Decision& dec : d) EXPECT_NE(dec.id, "x");
}

TEST(HeatTracker, ZeroWindowDisablesEvaluation) {
  RoutingOptions r = smallWindow();
  r.heatWindow = 0;
  HeatTracker t(r);
  for (int k = 0; k < 64; ++k)
    EXPECT_TRUE(t.recordServed("x").empty());
  EXPECT_FALSE(t.isHot("x"));
}

}  // namespace
}  // namespace dic
