#pragma once
// Shared test helper: one canonical text form of a netlist (nets, names,
// bboxes, terminals, devices, element-net map) so every byte-identity
// test compares the same fields. Not part of the library API.

#include <sstream>
#include <string>

#include "netlist/netlist.hpp"

namespace dic::netlist::testing {

inline std::string canonicalText(const Netlist& nl) {
  std::ostringstream os;
  for (const Net& n : nl.nets) {
    os << n.id << '|' << n.elementCount << '|' << n.bbox.lo.x << ','
       << n.bbox.lo.y << ',' << n.bbox.hi.x << ',' << n.bbox.hi.y << '|';
    for (const std::string& s : n.names) os << s << ';';
    for (const Terminal& t : n.terminals)
      os << t.device << ':' << t.port << ':' << t.net << ';';
    os << '\n';
  }
  for (const ExtractedDevice& d : nl.devices) {
    os << d.path << '|' << d.type << '|';
    for (const auto& [port, net] : d.portNets) os << port << '=' << net << ';';
    os << '\n';
  }
  for (int id : nl.elementNet) os << id << ',';
  return os.str();
}

}  // namespace dic::netlist::testing
