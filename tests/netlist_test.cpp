// Tests for netlist extraction: skeletal connectivity, device terminals,
// hierarchical names, label merging, golden comparison.
#include <gtest/gtest.h>

#include "engine/executor.hpp"
#include "engine/hierarchy_view.hpp"
#include "netlist/netlist.hpp"
#include "netlist_canonical.hpp"
#include "netlist/unionfind.hpp"
#include "tech/technology.hpp"
#include "workload/generator.hpp"

namespace dic::netlist {
namespace {

using geom::makeRect;
using layout::makeBox;
using layout::makeWire;

TEST(UnionFind, Basics) {
  UnionFind uf(5);
  EXPECT_FALSE(uf.connected(0, 1));
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_FALSE(uf.unite(0, 1));
  EXPECT_TRUE(uf.unite(1, 2));
  EXPECT_TRUE(uf.connected(0, 2));
  EXPECT_FALSE(uf.connected(0, 4));
}

class ExtractTest : public ::testing::Test {
 protected:
  tech::Technology t = tech::nmos();
  const int nm = *t.layerByName("metal");
  const int np = *t.layerByName("poly");
  const geom::Coord L = t.lambda();
};

TEST_F(ExtractTest, TwoOverlappingWiresOneNet) {
  layout::Library lib;
  layout::Cell top;
  top.name = "top";
  top.elements.push_back(makeWire(nm, {{0, 0}, {40 * L, 0}}, 3 * L));
  top.elements.push_back(makeWire(nm, {{20 * L, 0}, {20 * L, 40 * L}}, 3 * L));
  const auto root = lib.addCell(std::move(top));
  const Netlist nl = extract(lib, root, t);
  EXPECT_EQ(nl.nets.size(), 1u);
  EXPECT_EQ(nl.nets[0].elementCount, 2u);
}

TEST_F(ExtractTest, AbuttingMinWidthWiresNotConnected) {
  // Fig. 11 right: skeletons of merely-abutting elements do not touch.
  layout::Library lib;
  layout::Cell top;
  top.name = "top";
  top.elements.push_back(makeBox(nm, makeRect(0, 0, 10 * L, 3 * L)));
  top.elements.push_back(makeBox(nm, makeRect(10 * L, 0, 20 * L, 3 * L)));
  const auto root = lib.addCell(std::move(top));
  const Netlist nl = extract(lib, root, t);
  EXPECT_EQ(nl.nets.size(), 2u);
}

TEST_F(ExtractTest, DifferentLayersStayApart) {
  layout::Library lib;
  layout::Cell top;
  top.name = "top";
  top.elements.push_back(makeBox(nm, makeRect(0, 0, 10 * L, 3 * L)));
  top.elements.push_back(makeBox(np, makeRect(0, 0, 10 * L, 3 * L)));
  const auto root = lib.addCell(std::move(top));
  const Netlist nl = extract(lib, root, t);
  EXPECT_EQ(nl.nets.size(), 2u);
}

TEST_F(ExtractTest, GlobalLabelMergesWithoutGeometry) {
  layout::Library lib;
  layout::Cell top;
  top.name = "top";
  top.elements.push_back(makeBox(nm, makeRect(0, 0, 10 * L, 3 * L), "VDD"));
  top.elements.push_back(
      makeBox(nm, makeRect(100 * L, 0, 110 * L, 3 * L), "VDD"));
  top.elements.push_back(
      makeBox(nm, makeRect(200 * L, 0, 210 * L, 3 * L), "local"));
  const auto root = lib.addCell(std::move(top));
  const Netlist nl = extract(lib, root, t);
  EXPECT_EQ(nl.nets.size(), 2u);
  const Net* vdd = nl.findNet("VDD");
  ASSERT_NE(vdd, nullptr);
  EXPECT_EQ(vdd->elementCount, 2u);
}

TEST_F(ExtractTest, LocalLabelsQualifiedByPath) {
  layout::Library lib;
  layout::Cell leaf;
  leaf.name = "leaf";
  leaf.elements.push_back(makeBox(nm, makeRect(0, 0, 10 * L, 3 * L), "out"));
  const auto leafId = lib.addCell(std::move(leaf));
  layout::Cell top;
  top.name = "top";
  top.instances.push_back({leafId, {geom::Orient::kR0, {0, 0}}, "a"});
  top.instances.push_back(
      {leafId, {geom::Orient::kR0, {0, 100 * L}}, "b"});
  const auto root = lib.addCell(std::move(top));
  const Netlist nl = extract(lib, root, t);
  EXPECT_EQ(nl.nets.size(), 2u);
  EXPECT_NE(nl.findNet("a.out"), nullptr);
  EXPECT_NE(nl.findNet("b.out"), nullptr);
}

TEST_F(ExtractTest, DeviceTerminalsAndInternalGroups) {
  layout::Library lib;
  const workload::NmosCells cells = workload::installNmosCells(lib, t);
  layout::Cell top;
  top.name = "top";
  // A metal wire onto a contact's metal side; a diff check through its
  // internal group is implied by the contact device semantics.
  top.instances.push_back(
      {cells.contactMD, {geom::Orient::kR0, {0, 0}}, "c1"});
  top.elements.push_back(
      makeWire(nm, {{0, 0}, {30 * L, 0}}, 3 * L, "sig"));
  const auto root = lib.addCell(std::move(top));
  const Netlist nl = extract(lib, root, t);
  ASSERT_EQ(nl.devices.size(), 1u);
  const ExtractedDevice& d = nl.devices[0];
  EXPECT_EQ(d.type, "CON_MD");
  // Both ports are on the same net (internal group) and that net carries
  // the wire's label.
  ASSERT_EQ(d.portNets.size(), 2u);
  EXPECT_EQ(d.portNets.at("A"), d.portNets.at("B"));
  EXPECT_TRUE(nl.nets[d.portNets.at("A")].hasName("sig"));
}

TEST_F(ExtractTest, TransistorKeepsSourceDrainApart) {
  layout::Library lib;
  const workload::NmosCells cells = workload::installNmosCells(lib, t);
  const int nd = *t.layerByName("diff");
  layout::Cell top;
  top.name = "top";
  top.instances.push_back({cells.tran, {geom::Orient::kR0, {0, 0}}, "t1"});
  top.elements.push_back(
      makeWire(nd, {{0, -3 * L}, {0, -20 * L}}, 2 * L, "s"));
  top.elements.push_back(makeWire(nd, {{0, 3 * L}, {0, 20 * L}}, 2 * L, "d"));
  top.elements.push_back(
      makeWire(np, {{-3 * L, 0}, {-20 * L, 0}}, 2 * L, "g"));
  const auto root = lib.addCell(std::move(top));
  const Netlist nl = extract(lib, root, t);
  ASSERT_EQ(nl.devices.size(), 1u);
  const ExtractedDevice& d = nl.devices[0];
  EXPECT_NE(d.portNets.at("S"), d.portNets.at("D"));
  EXPECT_NE(d.portNets.at("G"), d.portNets.at("S"));
  EXPECT_TRUE(nl.nets[d.portNets.at("S")].hasName("s"));
  EXPECT_TRUE(nl.nets[d.portNets.at("D")].hasName("d"));
  EXPECT_TRUE(nl.nets[d.portNets.at("G")].hasName("g"));
  // G and G2 are the same poly piece.
  EXPECT_EQ(d.portNets.at("G"), d.portNets.at("G2"));
}

TEST_F(ExtractTest, InverterExtractsAsExpected) {
  layout::Library lib;
  const workload::NmosCells cells = workload::installNmosCells(lib, t);
  layout::Cell top;
  top.name = "top";
  top.instances.push_back(
      {cells.inverter, {geom::Orient::kR0, {0, 0}}, "i1"});
  const auto root = lib.addCell(std::move(top));
  const Netlist nl = extract(lib, root, t);

  // Devices: driver, load, 4 contacts.
  ASSERT_EQ(nl.devices.size(), 6u);
  const ExtractedDevice* driver = nullptr;
  const ExtractedDevice* load = nullptr;
  for (const ExtractedDevice& d : nl.devices) {
    if (d.type == "TRAN") driver = &d;
    if (d.type == "DTRAN") load = &d;
  }
  ASSERT_NE(driver, nullptr);
  ASSERT_NE(load, nullptr);

  const Net* vdd = nl.findNet("VDD");
  const Net* gnd = nl.findNet("GND");
  ASSERT_NE(vdd, nullptr);
  ASSERT_NE(gnd, nullptr);
  EXPECT_NE(vdd->id, gnd->id);

  // Driver: source on GND, drain on the output, gate on the input.
  EXPECT_EQ(driver->portNets.at("S"), gnd->id);
  const int outNet = driver->portNets.at("D");
  EXPECT_NE(outNet, gnd->id);
  // Load: source tied to output, gate tied to output (depletion load),
  // drain on VDD.
  EXPECT_EQ(load->portNets.at("S"), outNet);
  EXPECT_EQ(load->portNets.at("G"), outNet);
  EXPECT_EQ(load->portNets.at("D"), vdd->id);
  // Input is its own net.
  EXPECT_NE(driver->portNets.at("G"), outNet);
  EXPECT_NE(driver->portNets.at("G"), gnd->id);
}

TEST_F(ExtractTest, GoldenComparisonAcceptsInverter) {
  layout::Library lib;
  const workload::NmosCells cells = workload::installNmosCells(lib, t);
  layout::Cell top;
  top.name = "top";
  top.instances.push_back(
      {cells.inverter, {geom::Orient::kR0, {0, 0}}, "i1"});
  const auto root = lib.addCell(std::move(top));
  const Netlist nl = extract(lib, root, t);

  std::vector<GoldenDevice> golden = {
      {"TRAN", {{"G", "in"}, {"S", "GND"}, {"D", "out"}}},
      {"DTRAN", {{"G", "out"}, {"S", "out"}, {"D", "VDD"}}},
      {"CON_MD", {{"A", "out"}}},
      {"CON_MD", {{"A", "GND"}}},
      {"CON_MD", {{"A", "VDD"}}},
      {"CON_MP", {{"A", "out"}}},
  };
  EXPECT_TRUE(compareAgainstGolden(nl, golden).empty());

  // A wrong golden (driver source on VDD) must be rejected.
  std::vector<GoldenDevice> wrong = golden;
  wrong[0].ports["S"] = "VDD";
  EXPECT_FALSE(compareAgainstGolden(nl, wrong).empty());
}

TEST(ExtractParallel, ThreadSweepIsByteIdenticalToSerial) {
  // The pooled extraction overload collects connectivity edges in
  // per-index slots and replays the unions serially, so every pool size
  // must reproduce the serial netlist exactly -- ids, names, terminals.
  const tech::Technology t = tech::nmos();
  workload::GeneratedChip chip = workload::generateChip(t, {1, 2, 2, 3, true});

  engine::HierarchyView view(chip.lib, chip.top);
  engine::Executor serial(1);
  const std::string ref = testing::canonicalText(extract(view, t, serial));
  EXPECT_FALSE(ref.empty());
  for (const int threads : {2, 8}) {
    engine::Executor pooled(threads);
    EXPECT_EQ(ref, testing::canonicalText(extract(view, t, pooled))) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace dic::netlist
