// Tests for the dic::Workspace check service: per-(root, revision) view
// cache semantics, netlist sharing, batch determinism across pool sizes,
// per-request failure isolation, and the thread-safety of the library's
// bbox cache under cold concurrent lookups.
#include <gtest/gtest.h>

#include <future>
#include <string>
#include <utility>
#include <vector>

#include "engine/executor.hpp"
#include "netlist_canonical.hpp"
#include "server/server.hpp"
#include "service/workspace.hpp"
#include "workload/generator.hpp"
#include "workload/inject.hpp"

namespace dic {
namespace {

using netlist::testing::canonicalText;

/// A small injected chip: every check kind has something to find.
workload::GeneratedChip makeChip() {
  const tech::Technology t = tech::nmos();
  workload::GeneratedChip chip = workload::generateChip(t, {1, 1, 2, 2, true});
  workload::InjectionPlan plan;
  workload::inject(chip, t, plan, /*seed=*/7);
  return chip;
}

TEST(Workspace, RepeatedRequestHitsViewCache) {
  workload::GeneratedChip chip = makeChip();
  Workspace ws(std::move(chip.lib), tech::nmos(), {/*threads=*/2});

  const CheckRequest req = CheckRequest::drc(chip.top);
  const CheckResult first = ws.run(req);
  ASSERT_TRUE(first.ok()) << first.error;
  EXPECT_FALSE(first.viewCacheHit);
  EXPECT_FALSE(first.report.empty());  // the injected defects

  const CheckResult second = ws.run(req);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.viewCacheHit);
  EXPECT_TRUE(second.netlistCacheHit);  // published by the first run
  EXPECT_EQ(second.revision, first.revision);
  EXPECT_EQ(first.report.text(), second.report.text());

  const Workspace::CacheStats s = ws.cacheStats();
  EXPECT_EQ(s.viewMisses, 1u);
  EXPECT_EQ(s.viewHits, 1u);
  EXPECT_EQ(s.viewEvictions, 0u);
  EXPECT_EQ(s.cachedViews, 1u);
}

TEST(Workspace, MutationInvalidatesCachedView) {
  workload::GeneratedChip chip = makeChip();
  Workspace ws(std::move(chip.lib), tech::nmos(), {2});

  const CheckRequest req = CheckRequest::drc(chip.top);
  const CheckResult before = ws.run(req);
  ASSERT_TRUE(before.ok());

  // Mutable cell access counts as a mutation: revision bumps, the cached
  // view goes stale, and the next run transparently rebuilds.
  ws.library().cell(chip.top);
  const CheckResult after = ws.run(req);
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after.viewCacheHit);
  EXPECT_GT(after.revision, before.revision);
  EXPECT_EQ(before.report.text(), after.report.text());  // nothing changed

  // A real edit: adding a cell invalidates again and changes nothing for
  // an unrelated root's report either.
  layout::Cell extra;
  extra.name = "unrelated";
  ws.library().addCell(std::move(extra));
  const CheckResult third = ws.run(req);
  ASSERT_TRUE(third.ok());
  EXPECT_FALSE(third.viewCacheHit);
  EXPECT_GT(third.revision, after.revision);
  EXPECT_EQ(before.report.text(), third.report.text());

  const Workspace::CacheStats s = ws.cacheStats();
  EXPECT_EQ(s.viewMisses, 3u);
  EXPECT_EQ(s.viewEvictions, 2u);
  EXPECT_EQ(s.cachedViews, 1u);
}

TEST(Workspace, NetlistSharedAcrossRequestKinds) {
  workload::GeneratedChip chip = makeChip();
  Workspace ws(std::move(chip.lib), tech::nmos(), {2});

  const CheckResult nlRes = ws.run(CheckRequest::netlistOnly(chip.top));
  ASSERT_TRUE(nlRes.ok());
  ASSERT_NE(nlRes.netlist, nullptr);
  EXPECT_FALSE(nlRes.netlistCacheHit);
  EXPECT_TRUE(nlRes.report.empty());

  const CheckResult ercRes = ws.run(CheckRequest::ercCheck(chip.top));
  ASSERT_TRUE(ercRes.ok());
  EXPECT_TRUE(ercRes.viewCacheHit);
  EXPECT_TRUE(ercRes.netlistCacheHit);
  EXPECT_EQ(ercRes.netlist.get(), nlRes.netlist.get());  // shared, not copied
  EXPECT_FALSE(ercRes.report.empty());  // injected electrical defects

  const CheckResult drcRes = ws.run(CheckRequest::drc(chip.top));
  ASSERT_TRUE(drcRes.ok());
  EXPECT_TRUE(drcRes.viewCacheHit);
  EXPECT_TRUE(drcRes.netlistCacheHit);  // pipeline reused the extraction
  EXPECT_EQ(drcRes.netlist.get(), nlRes.netlist.get());
}

TEST(Workspace, BatchByteIdenticalToSequentialAcrossThreads) {
  const tech::Technology t = tech::nmos();

  // A mixed batch: the full pipeline, the mask-level baseline, ERC,
  // extraction-only, and an ablated pipeline (net-blind, orthogonal).
  workload::GeneratedChip proto = makeChip();
  std::vector<CheckRequest> reqs;
  reqs.push_back(CheckRequest::drc(proto.top));
  reqs.push_back(CheckRequest::baseline(proto.top));
  reqs.push_back(CheckRequest::ercCheck(proto.top));
  reqs.push_back(CheckRequest::netlistOnly(proto.top));
  CheckRequest ablated = CheckRequest::drc(proto.top);
  ablated.useNetInformation = false;
  ablated.metric = geom::Metric::kOrthogonal;
  reqs.push_back(ablated);

  // Reference: sequential single runs on a serial workspace.
  std::vector<std::string> refText;
  std::vector<std::string> refNl;
  {
    workload::GeneratedChip chip = makeChip();
    Workspace ws(std::move(chip.lib), t, {/*threads=*/1});
    for (const CheckRequest& r : reqs) {
      const CheckResult res = ws.run(r);
      ASSERT_TRUE(res.ok()) << res.error;
      refText.push_back(res.report.text());
      refNl.push_back(res.netlist ? canonicalText(*res.netlist) : "");
    }
  }

  for (const int threads : {1, 2, 8}) {
    workload::GeneratedChip chip = makeChip();
    Workspace ws(std::move(chip.lib), t, {threads});
    const std::vector<CheckResult> out = ws.runBatch(reqs);
    ASSERT_EQ(out.size(), reqs.size());
    for (std::size_t i = 0; i < out.size(); ++i) {
      ASSERT_TRUE(out[i].ok()) << out[i].error;
      EXPECT_EQ(out[i].report.text(), refText[i])
          << "threads=" << threads << " request " << i;
      EXPECT_EQ(out[i].netlist ? canonicalText(*out[i].netlist) : "", refNl[i])
          << "threads=" << threads << " request " << i;
    }
    // All five requests target one root: the decomposed batch acquires
    // each unique root exactly once (the shared view stage), so a cold
    // batch is one miss and zero per-request hits.
    const Workspace::CacheStats s = ws.cacheStats();
    EXPECT_EQ(s.viewMisses, 1u) << "threads=" << threads;
    EXPECT_EQ(s.viewHits, 0u) << "threads=" << threads;
    EXPECT_EQ(s.cachedViews, 1u) << "threads=" << threads;
  }
}

TEST(Workspace, BatchDedupsNetlistExtractionAcrossRequests) {
  // Three netlist-consuming requests on one (root, extract-options)
  // pair: the batch's prefetch stage runs the extraction once, and every
  // consumer reports a netlist cache hit on the same shared object —
  // none of them serialized on the per-entry netlist mutex doing the
  // work itself.
  workload::GeneratedChip chip = makeChip();
  Workspace ws(std::move(chip.lib), tech::nmos(), {4});

  std::vector<CheckRequest> reqs;
  reqs.push_back(CheckRequest::drc(chip.top));
  reqs.push_back(CheckRequest::ercCheck(chip.top));
  reqs.push_back(CheckRequest::netlistOnly(chip.top));
  const std::vector<CheckResult> out = ws.runBatch(reqs);
  ASSERT_EQ(out.size(), 3u);
  for (const CheckResult& r : out) {
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_TRUE(r.netlistCacheHit);  // extraction happened in the prefetch
    ASSERT_NE(r.netlist, nullptr);
    EXPECT_EQ(r.netlist.get(), out[0].netlist.get());  // shared, not rebuilt
  }
  const Workspace::CacheStats s = ws.cacheStats();
  EXPECT_EQ(s.viewMisses, 1u);
  EXPECT_EQ(s.netlistHits, 3u);  // one per consumer; the prefetch built it
}

TEST(Workspace, FailedRequestDoesNotAbortBatch) {
  // Failed-request isolation MID-GRAPH: the bad roots' shared view stages
  // fail inside the decomposed batch graph and poison exactly their own
  // requests' subgraphs (kIsolate). The healthy requests — declared
  // before, between, and after the failures — complete byte-identically
  // to sequential runs.
  const tech::Technology t = tech::nmos();
  std::vector<std::string> refText(5);
  {
    workload::GeneratedChip chip = makeChip();
    Workspace ws(std::move(chip.lib), t, {/*threads=*/1});
    refText[0] = ws.run(CheckRequest::drc(chip.top)).report.text();
    refText[2] = ws.run(CheckRequest::ercCheck(chip.top)).report.text();
    refText[4] = ws.run(CheckRequest::baseline(chip.top)).report.text();
  }

  workload::GeneratedChip chip = makeChip();
  Workspace ws(std::move(chip.lib), t, {4});

  std::vector<CheckRequest> reqs;
  reqs.push_back(CheckRequest::drc(chip.top));
  reqs.push_back(CheckRequest::drc(/*root=*/99999));      // no such cell
  reqs.push_back(CheckRequest::ercCheck(chip.top));
  reqs.push_back(CheckRequest::ercCheck(/*root=*/88888));  // no such cell
  reqs.push_back(CheckRequest::baseline(chip.top));

  const std::vector<CheckResult> out = ws.runBatch(reqs);
  ASSERT_EQ(out.size(), 5u);
  for (const std::size_t bad : {std::size_t{1}, std::size_t{3}}) {
    EXPECT_FALSE(out[bad].ok());
    EXPECT_FALSE(out[bad].error.empty());
    EXPECT_EQ(out[bad].root, reqs[bad].root);  // identity fields survive
    EXPECT_EQ(out[bad].kind, reqs[bad].kind);
  }
  for (const std::size_t good :
       {std::size_t{0}, std::size_t{2}, std::size_t{4}}) {
    ASSERT_TRUE(out[good].ok()) << out[good].error;
    EXPECT_EQ(out[good].report.text(), refText[good]) << "request " << good;
  }
}

TEST(Workspace, DecomposedBatchFillsPerRequestStageTelemetry) {
  workload::GeneratedChip chip = makeChip();
  Workspace ws(std::move(chip.lib), tech::nmos(), {2});

  std::vector<CheckRequest> reqs;
  reqs.push_back(CheckRequest::drc(chip.top));
  reqs.push_back(CheckRequest::ercCheck(chip.top));
  const std::vector<CheckResult> out = ws.runBatch(reqs);
  ASSERT_EQ(out.size(), 2u);
  ASSERT_TRUE(out[0].ok()) << out[0].error;

  // The DRC request's five stages are sliced out of the batch graph under
  // their canonical names, every one started, and the request's clock
  // spans its own stages.
  ASSERT_EQ(out[0].stageResults.size(), 5u);
  const char* names[] = {"elements", "symbols", "connections", "netlist",
                         "interactions"};
  for (std::size_t s = 0; s < 5; ++s) {
    EXPECT_EQ(out[0].stageResults[s].name, names[s]);
    EXPECT_TRUE(out[0].stageResults[s].ok()) << names[s];
    EXPECT_GE(out[0].stageResults[s].start, 0.0) << names[s];
  }
  EXPECT_GT(out[0].seconds, 0.0);
  EXPECT_GT(out[0].stageTimes.total(), 0.0);
  EXPECT_GT(out[0].interactionStats.candidatePairs, 0u);
  // Non-DRC requests keep empty stage telemetry, as in sequential runs.
  EXPECT_TRUE(out[1].stageResults.empty());
}

TEST(Workspace, DecomposedBatchByteIdenticalAcrossThreadAndShardSweep) {
  // The acceptance sweep: decomposed batches must reproduce sequential
  // per-request bytes for Workspace pool sizes {1, 2, 8} and, through the
  // serving tier's submitBatch, shard counts {1, 4}.
  const tech::Technology t = tech::nmos();
  workload::GeneratedChip proto = makeChip();
  std::vector<CheckRequest> reqs;
  reqs.push_back(CheckRequest::drc(proto.top));
  reqs.push_back(CheckRequest::baseline(proto.top));
  reqs.push_back(CheckRequest::ercCheck(proto.top));
  reqs.push_back(CheckRequest::netlistOnly(proto.top));
  reqs.push_back(CheckRequest::drc(proto.top));  // duplicate: shares stages

  std::vector<std::string> refText;
  std::vector<std::string> refNl;
  {
    workload::GeneratedChip chip = makeChip();
    Workspace ws(std::move(chip.lib), t, {/*threads=*/1});
    for (const CheckRequest& r : reqs) {
      const CheckResult res = ws.run(r);
      ASSERT_TRUE(res.ok()) << res.error;
      refText.push_back(res.report.text());
      refNl.push_back(res.netlist ? canonicalText(*res.netlist) : "");
    }
  }
  const auto expectMatch = [&](const std::vector<CheckResult>& out,
                               const std::string& what) {
    ASSERT_EQ(out.size(), reqs.size()) << what;
    for (std::size_t i = 0; i < out.size(); ++i) {
      ASSERT_TRUE(out[i].ok()) << what << " request " << i << ": "
                               << out[i].error;
      EXPECT_EQ(out[i].report.text(), refText[i])
          << what << " request " << i;
      EXPECT_EQ(out[i].netlist ? canonicalText(*out[i].netlist) : "",
                refNl[i])
          << what << " request " << i;
    }
  };

  for (const int threads : {1, 2, 8}) {
    workload::GeneratedChip chip = makeChip();
    Workspace ws(std::move(chip.lib), t, {threads});
    expectMatch(ws.runBatch(reqs), "threads=" + std::to_string(threads));
  }

  for (const int shards : {1, 4}) {
    for (const int threadsPerShard : {1, 2, 8}) {
      server::ServerOptions opts;
      opts.shards = shards;
      opts.threadsPerShard = threadsPerShard;
      server::Server srv(opts);
      workload::GeneratedChip chip = makeChip();
      ASSERT_TRUE(srv.addLibrary("lib", std::move(chip.lib), t));
      expectMatch(srv.submitBatch("lib", reqs).get(),
                  "shards=" + std::to_string(shards) +
                      " thr/sh=" + std::to_string(threadsPerShard));
    }
  }
}

TEST(Workspace, DedicatedPoolMatchesSharedPool) {
  workload::GeneratedChip chip = makeChip();
  Workspace ws(std::move(chip.lib), tech::nmos(), {/*threads=*/1});

  const CheckResult shared = ws.run(CheckRequest::drc(chip.top));
  CheckRequest dedicated = CheckRequest::drc(chip.top);
  dedicated.threads = 4;  // per-request pool, same bytes out
  const CheckResult pooled = ws.run(dedicated);
  ASSERT_TRUE(shared.ok());
  ASSERT_TRUE(pooled.ok());
  EXPECT_EQ(shared.report.text(), pooled.report.text());
  EXPECT_TRUE(pooled.viewCacheHit);  // cache is shared regardless of pool
}

TEST(Workspace, LruEvictionAfterEditRebuildsCleanly) {
  // Dirty tracking must not outlive the entry it describes: patch a
  // cached view in place through a tracked edit, let the LRU byte cap
  // evict that entry when another root is served, then re-request the
  // evicted root with a further edit. The rebuild must start from the
  // post-edit library — no stale pending-dirty window, no resurrected
  // cached netlist — and match a cold single-threaded oracle
  // byte-for-byte at every step.
  std::size_t bytesTop = 0, bytesBlock = 0;
  layout::CellId top{}, block{};
  layout::Element e0;
  {
    workload::GeneratedChip chip = makeChip();
    top = chip.top;
    block = chip.block;
    e0 = std::as_const(chip.lib).cell(block).elements[0];
    Workspace ws(std::move(chip.lib), tech::nmos(), {1});
    ASSERT_TRUE(ws.run(CheckRequest::drc(top)).ok());
    bytesTop = ws.cacheStats().cacheBytes;
    ASSERT_TRUE(ws.run(CheckRequest::drc(block)).ok());
    bytesBlock = ws.cacheStats().cacheBytes - bytesTop;
    ASSERT_GT(bytesTop, 0u);
    ASSERT_GT(bytesBlock, 0u);
  }
  const layout::Element e1 = e0.transformed(geom::translate({25, 0}));

  workload::GeneratedChip forWs = makeChip();
  workload::GeneratedChip forOracle = makeChip();
  WorkspaceOptions wopts;
  wopts.threads = 2;
  wopts.maxCacheBytes = std::max(bytesTop, bytesBlock) + bytesTop / 8;
  ASSERT_LT(wopts.maxCacheBytes, bytesTop + bytesBlock);
  Workspace ws(std::move(forWs.lib), tech::nmos(), wopts);
  Workspace oracle(std::move(forOracle.lib), tech::nmos(), {1});

  const auto oracleRun = [&](layout::CellId root, const layout::Element& e) {
    oracle.library().setElement(block, 0, e);
    oracle.library().invalidateCaches();  // edit log cleared: cold rebuild
    return oracle.run(CheckRequest::drc(root));
  };
  const auto editReq = [&](layout::CellId root, const layout::Element& e) {
    CheckRequest req = CheckRequest::drc(root);
    req.edits.push_back(EditOp::setElement(block, 0, e));
    return req;
  };

  // Warm, then patch the cached view in place via a tracked edit.
  ASSERT_TRUE(ws.run(CheckRequest::drc(top)).ok());
  const CheckResult patched = ws.run(editReq(top, e1));
  ASSERT_TRUE(patched.ok()) << patched.error;
  EXPECT_TRUE(patched.viewCacheHit);
  EXPECT_TRUE(patched.incrementalHit);
  EXPECT_EQ(patched.report.text(), oracleRun(top, e1).report.text());

  // Serving the other root trips the byte cap and evicts the patched
  // (and dirty-tracked) top entry, which is now the coldest.
  const CheckResult other = ws.run(CheckRequest::drc(block));
  ASSERT_TRUE(other.ok());
  EXPECT_GE(ws.cacheStats().lruEvictions, 1u);
  EXPECT_EQ(ws.cacheStats().cachedViews, 1u);
  EXPECT_EQ(other.report.text(), oracle.run(CheckRequest::drc(block)).report.text());

  // The evicted root returns with another edit riding along: no cached
  // entry to patch, so this must rebuild from the post-edit library.
  const CheckResult rebuilt = ws.run(editReq(top, e0));
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.error;
  EXPECT_FALSE(rebuilt.viewCacheHit);
  EXPECT_FALSE(rebuilt.incrementalHit);
  EXPECT_EQ(rebuilt.report.text(), oracleRun(top, e0).report.text());

  // And the fresh entry immediately supports in-place patching again.
  const CheckResult repatched = ws.run(editReq(top, e1));
  ASSERT_TRUE(repatched.ok()) << repatched.error;
  EXPECT_TRUE(repatched.viewCacheHit);
  EXPECT_TRUE(repatched.incrementalHit);
  EXPECT_EQ(repatched.report.text(), oracleRun(top, e1).report.text());
}

TEST(Workspace, ViewAccessorReturnsCachedView) {
  workload::GeneratedChip chip = makeChip();
  Workspace ws(std::move(chip.lib), tech::nmos(), {1});

  const auto v1 = ws.view(chip.top);
  const auto v2 = ws.view(chip.top);
  EXPECT_EQ(v1.get(), v2.get());

  ws.library().invalidateCaches();  // back-door mutation signal
  const auto v3 = ws.view(chip.top);
  EXPECT_NE(v1.get(), v3.get());
}

TEST(LibraryBBoxCache, ColdConcurrentLookupsMatchSerial) {
  // ThreadSanitizer-style stress for the bbox cache: many workers resolve
  // every cell's recursive bbox concurrently on a COLD cache (the
  // hierarchy-view warm-up is deliberately bypassed), which exercises the
  // mutex-guarded find/insert from all sides. Values must match a serial
  // reference computed on a copy.
  const tech::Technology t = tech::nmos();
  for (int iter = 0; iter < 10; ++iter) {
    const workload::GeneratedChip chip =
        workload::generateChip(t, {2, 2, 2, 2, true});
    const layout::Library copy = chip.lib;  // exercises the copy ctor too
    const std::size_t n = copy.cellCount();
    std::vector<geom::Rect> ref(n);
    for (std::size_t i = 0; i < n; ++i)
      ref[i] = copy.cellBBox(static_cast<layout::CellId>(i));

    engine::Executor exec(8);
    std::vector<geom::Rect> got(4 * n);
    // 4 passes per cell so lookups overlap computes of the same ids; each
    // worker writes only its own slot.
    exec.parallelFor(got.size(), [&](std::size_t k) {
      got[k] = chip.lib.cellBBox(static_cast<layout::CellId>(k % n));
    });
    for (std::size_t k = 0; k < got.size(); ++k)
      EXPECT_EQ(got[k], ref[k % n]) << "iter " << iter << " cell " << k % n;
  }
}

}  // namespace
}  // namespace dic
