// Tests for the DIC pipeline stages (Fig. 10) and the paper's headline
// behaviours: per-symbol checking, net-aware interactions, device rules.
#include <gtest/gtest.h>

#include "drc/checker.hpp"
#include "drc/stages.hpp"
#include "workload/generator.hpp"

namespace dic::drc {
namespace {

using geom::makeRect;
using layout::makeBox;
using layout::makeWire;

class DrcTest : public ::testing::Test {
 protected:
  tech::Technology t = tech::nmos();
  const int nd = *t.layerByName("diff");
  const int np = *t.layerByName("poly");
  const int nm = *t.layerByName("metal");
  const int ncut = *t.layerByName("contact");
  const geom::Coord L = t.lambda();
};

// --- Stage 1: element checks -----------------------------------------------

TEST_F(DrcTest, ElementWidthBoxOk) {
  EXPECT_TRUE(
      checkElementWidth(makeBox(nm, makeRect(0, 0, 3 * L, 10 * L)), t)
          .empty());
}

TEST_F(DrcTest, ElementWidthBoxNarrow) {
  const auto v =
      checkElementWidth(makeBox(nm, makeRect(0, 0, 2 * L, 10 * L)), t);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].category, report::Category::kWidth);
  EXPECT_EQ(v[0].rule, "W.metal");
}

TEST_F(DrcTest, ElementWidthWire) {
  EXPECT_TRUE(
      checkElementWidth(makeWire(np, {{0, 0}, {10 * L, 0}}, 2 * L), t)
          .empty());
  EXPECT_FALSE(
      checkElementWidth(makeWire(np, {{0, 0}, {10 * L, 0}}, L), t).empty());
}

TEST_F(DrcTest, ElementWidthPolygonNeedsGeneralRoutine) {
  // An L-polygon with one thin arm.
  const auto v = checkElementWidth(
      layout::makePolygon(nm, {{0, 0},
                               {10 * L, 0},
                               {10 * L, L},
                               {3 * L, L},
                               {3 * L, 10 * L},
                               {0, 10 * L}}),
      t);
  ASSERT_FALSE(v.empty());
  EXPECT_EQ(v[0].category, report::Category::kWidth);
}

TEST_F(DrcTest, NonManhattanFlagged) {
  const auto v = checkElementWidth(
      layout::makePolygon(nm, {{0, 0}, {10 * L, 0}, {0, 10 * L}}), t);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].rule, "GEOM.MANHATTAN");
}

// --- Stage 3: legal connections (Fig. 11 / Fig. 15) -------------------------

TEST_F(DrcTest, ConnectionLegalOverlap) {
  // Boxes overlapping by at least the minimum width: skeletons touch.
  layout::Cell c;
  c.name = "c";
  c.elements.push_back(makeBox(nm, makeRect(0, 0, 10 * L, 3 * L)));
  c.elements.push_back(makeBox(nm, makeRect(7 * L, 0, 17 * L, 3 * L)));
  EXPECT_TRUE(checkCellConnections(c, t).empty());
}

TEST_F(DrcTest, ConnectionButtingFlagged) {
  // Abutting boxes: touch but skeletons do not connect.
  layout::Cell c;
  c.name = "c";
  c.elements.push_back(makeBox(nm, makeRect(0, 0, 10 * L, 3 * L)));
  c.elements.push_back(makeBox(nm, makeRect(10 * L, 0, 20 * L, 3 * L)));
  const auto v = checkCellConnections(c, t);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].category, report::Category::kConnection);
}

TEST_F(DrcTest, ConnectionDifferentLayersIgnored) {
  layout::Cell c;
  c.name = "c";
  c.elements.push_back(makeBox(nm, makeRect(0, 0, 10 * L, 3 * L)));
  c.elements.push_back(makeBox(np, makeRect(0, 0, 10 * L, 3 * L)));
  EXPECT_TRUE(checkCellConnections(c, t).empty());
}

// --- Stage 2: device checks (Figs. 6, 7) -----------------------------------

layout::Cell fetCell(const tech::Technology& t, geom::Coord polyHalfLen,
                     geom::Coord diffHalfLen, const char* type = "TRAN") {
  const geom::Coord L = t.lambda();
  layout::Cell c;
  c.name = "dev";
  c.deviceType = type;
  c.elements.push_back(layout::makeBox(
      *t.layerByName("poly"), makeRect(-polyHalfLen, -L, polyHalfLen, L)));
  c.elements.push_back(layout::makeBox(
      *t.layerByName("diff"), makeRect(-L, -diffHalfLen, L, diffHalfLen)));
  return c;
}

TEST_F(DrcTest, FetOk) {
  EXPECT_TRUE(checkDeviceCell(fetCell(t, 3 * L, 3 * L), t).empty());
}

TEST_F(DrcTest, FetGateOverlapTooSmall) {
  // Poly extends only 1L past the gate; rule is 2L ("source and drain
  // may short").
  const auto v = checkDeviceCell(fetCell(t, 2 * L, 3 * L), t);
  ASSERT_FALSE(v.empty());
  EXPECT_EQ(v[0].rule, "DEV.GATE_OVERLAP");
}

TEST_F(DrcTest, FetNoGate) {
  layout::Cell c;
  c.name = "dev";
  c.deviceType = "TRAN";
  c.elements.push_back(makeBox(np, makeRect(0, 0, 6 * L, 2 * L)));
  c.elements.push_back(makeBox(nd, makeRect(10 * L, 0, 12 * L, 6 * L)));
  const auto v = checkDeviceCell(c, t);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].rule, "DEV.NOGATE");
}

TEST_F(DrcTest, DepletionNeedsImplant) {
  layout::Cell c = fetCell(t, 3 * L, 3 * L, "DTRAN");
  const auto missing = checkDeviceCell(c, t);
  ASSERT_EQ(missing.size(), 1u);
  EXPECT_EQ(missing[0].rule, "DEV.IMPLANT");
  c.elements.push_back(layout::makeBox(
      *t.layerByName("implant"), makeRect(-3 * L, -3 * L, 3 * L, 3 * L)));
  EXPECT_TRUE(checkDeviceCell(c, t).empty());
}

TEST_F(DrcTest, ContactOverGateFlagged) {
  layout::Cell c = fetCell(t, 3 * L, 3 * L);
  c.elements.push_back(makeBox(ncut, makeRect(-L, -L, L, L)));
  const auto v = checkDeviceCell(c, t);
  ASSERT_FALSE(v.empty());
  bool found = false;
  for (const auto& x : v)
    if (x.category == report::Category::kContactOverGate) found = true;
  EXPECT_TRUE(found);
}

TEST_F(DrcTest, ButtingContactLegal) {
  // Fig. 7: the same cut-over-poly-and-diff pattern is legal in a
  // butting-contact device.
  layout::Cell c;
  c.name = "butt";
  c.deviceType = "BUTT";
  c.elements.push_back(makeBox(nd, makeRect(-3 * L, -2 * L, L, 2 * L)));
  c.elements.push_back(makeBox(np, makeRect(-L, -2 * L, 3 * L, 2 * L)));
  c.elements.push_back(makeBox(nm, makeRect(-3 * L, -2 * L, 3 * L, 2 * L)));
  c.elements.push_back(makeBox(ncut, makeRect(-2 * L, -L, 2 * L, L)));
  EXPECT_TRUE(checkDeviceCell(c, t).empty());
}

TEST_F(DrcTest, ContactEnclosure) {
  layout::Cell c;
  c.name = "con";
  c.deviceType = "CON_MD";
  c.elements.push_back(makeBox(nd, makeRect(-2 * L, -2 * L, 2 * L, 2 * L)));
  c.elements.push_back(makeBox(nm, makeRect(-2 * L, -2 * L, 2 * L, 2 * L)));
  c.elements.push_back(makeBox(ncut, makeRect(-L, -L, 2 * L, L)));
  const auto v = checkDeviceCell(c, t);  // cut sticks out to the east
  ASSERT_FALSE(v.empty());
  EXPECT_EQ(v[0].rule, "DEV.CON_MET");
}

TEST_F(DrcTest, BipolarFig6DeviceDependent) {
  const tech::Technology bt = tech::bipolar();
  const geom::Coord U = bt.lambda();
  auto cellWith = [&](const char* type) {
    layout::Cell c;
    c.name = std::string("d_") + type;
    c.deviceType = type;
    c.elements.push_back(layout::makeBox(*bt.layerByName("base"),
                                         makeRect(0, 0, 10 * U, 6 * U)));
    // Isolation abutting the base: the Fig. 6 situation.
    c.elements.push_back(layout::makeBox(*bt.layerByName("iso"),
                                         makeRect(10 * U, 0, 16 * U, 6 * U)));
    return c;
  };
  const auto npn = checkDeviceCell(cellWith("NPN"), bt);
  ASSERT_EQ(npn.size(), 1u);  // error: device integrity destroyed
  EXPECT_EQ(npn[0].rule, "DEV.BASE_ISO");
  EXPECT_TRUE(checkDeviceCell(cellWith("BRES"), bt).empty());  // legal
}

TEST_F(DrcTest, PrecheckedDeviceSkipped) {
  layout::Library lib;
  layout::Cell bad = fetCell(t, 2 * L, 3 * L);  // overlap violation
  bad.prechecked = true;
  const auto devId = lib.addCell(std::move(bad));
  layout::Cell top;
  top.name = "top";
  top.instances.push_back({devId, {geom::Orient::kR0, {0, 0}}, "d"});
  const auto root = lib.addCell(std::move(top));
  Checker checker(lib, root, t);
  EXPECT_TRUE(checker.checkPrimitiveSymbols().empty());
}

// --- Stage 5: interactions (Figs. 5, 12) -------------------------------------

struct InteractionFixture {
  layout::Library lib;
  layout::CellId root{};
};

TEST_F(DrcTest, SameNetSpacingSkippedDiffNetFlagged) {
  // Fig. 5a: two boxes 1L apart. Same net -> no check; different nets ->
  // spacing error. (CLK/IN are chip-global labels, so equal labels merge.)
  for (const bool sameNet : {true, false}) {
    layout::Library lib;
    layout::Cell top;
    top.name = "top";
    top.elements.push_back(
        makeBox(nm, makeRect(0, 0, 10 * L, 3 * L), "CLK"));
    top.elements.push_back(makeBox(nm, makeRect(0, 4 * L, 10 * L, 7 * L),
                                   sameNet ? "CLK" : "IN1"));
    const auto root = lib.addCell(std::move(top));
    Checker checker(lib, root, t, {});
    const auto nl = checker.generateNetlist();
    const auto rep = checker.checkInteractions(nl);
    if (sameNet) {
      EXPECT_TRUE(rep.empty()) << rep.text();
    } else {
      ASSERT_EQ(rep.count(report::Category::kSpacing), 1u) << rep.text();
    }
  }
}

TEST_F(DrcTest, ResistorSameNetStillChecked) {
  // Fig. 5b: geometry electrically tied to a resistor body must still
  // keep its distance (a short would bypass the resistor).
  layout::Library lib;
  const workload::NmosCells cells = workload::installNmosCells(lib, t);
  layout::Cell top;
  top.name = "top";
  top.instances.push_back(
      {cells.resistor, {geom::Orient::kR0, {0, 0}}, "r1"});
  // Diff wire from port A, hooking around 1L below the body.
  top.elements.push_back(makeWire(nd,
                                  {{-4 * L, 0},
                                   {-8 * L, 0},
                                   {-8 * L, -4 * L},
                                   {0, -4 * L}},
                                  2 * L, "end"));
  const auto root = lib.addCell(std::move(top));
  Checker checker(lib, root, t, {});
  const auto nl = checker.generateNetlist();
  const auto rep = checker.checkInteractions(nl);
  EXPECT_GE(rep.count(report::Category::kSpacing), 1u) << rep.text();
}

TEST_F(DrcTest, CleanInverterHasNoViolations) {
  layout::Library lib;
  const workload::NmosCells cells = workload::installNmosCells(lib, t);
  layout::Cell top;
  top.name = "top";
  top.instances.push_back(
      {cells.inverter, {geom::Orient::kR0, {0, 0}}, "i1"});
  const auto root = lib.addCell(std::move(top));
  Checker checker(lib, root, t, {});
  const auto rep = checker.run();
  EXPECT_TRUE(rep.empty()) << rep.text();
}

TEST_F(DrcTest, FlatAndHierarchicalAgree) {
  const workload::ChipParams params{.blockRows = 1,
                                    .blockCols = 2,
                                    .invRows = 2,
                                    .invCols = 2,
                                    .withPads = true};
  workload::GeneratedChip chip = workload::generateChip(t, params);

  Options flat;
  flat.hierarchicalInteractions = false;
  Options hier;
  hier.hierarchicalInteractions = true;

  Checker cf(chip.lib, chip.top, t, flat);
  Checker ch(chip.lib, chip.top, t, hier);
  const auto nlf = cf.generateNetlist();
  const auto nlh = ch.generateNetlist();
  const auto rf = cf.checkInteractions(nlf);
  const auto rh = ch.checkInteractions(nlh);
  EXPECT_EQ(rf.count(), rh.count()) << "flat:\n"
                                    << rf.text() << "hier:\n"
                                    << rh.text();
}

TEST_F(DrcTest, CleanChipIsCleanEndToEnd) {
  const workload::ChipParams params{.blockRows = 1,
                                    .blockCols = 1,
                                    .invRows = 2,
                                    .invCols = 2,
                                    .withPads = true};
  workload::GeneratedChip chip = workload::generateChip(t, params);
  Checker checker(chip.lib, chip.top, t, {});
  const auto rep = checker.run();
  EXPECT_TRUE(rep.empty()) << rep.text();
}

TEST_F(DrcTest, InteractionStatsPruneSameNet) {
  const workload::ChipParams params{.blockRows = 1,
                                    .blockCols = 1,
                                    .invRows = 2,
                                    .invCols = 2,
                                    .withPads = false};
  workload::GeneratedChip chip = workload::generateChip(t, params);
  Checker checker(chip.lib, chip.top, t, {});
  checker.run();
  const InteractionStats& s = checker.interactionStats();
  EXPECT_GT(s.candidatePairs, 0u);
  EXPECT_GT(s.sameNetSkipped + s.relatedSkipped, 0u);
  EXPECT_GT(s.noRulePairs, 0u);
}

}  // namespace
}  // namespace dic::drc
