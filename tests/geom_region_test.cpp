// Unit + property tests for the Region scanline boolean engine.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "geom/region.hpp"

namespace dic::geom {
namespace {

Region box(Coord x1, Coord y1, Coord x2, Coord y2) {
  return Region(makeRect(x1, y1, x2, y2));
}

TEST(Region, EmptyBasics) {
  Region r;
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.area(), 0);
  EXPECT_TRUE(unite(r, r).empty());
  EXPECT_TRUE(Region(Rect{{5, 5}, {5, 9}}).empty());
}

TEST(Region, SingleRect) {
  const Region r = box(0, 0, 10, 5);
  EXPECT_EQ(r.area(), 50);
  EXPECT_EQ(r.bbox(), makeRect(0, 0, 10, 5));
  EXPECT_TRUE(r.contains({0, 0}));
  EXPECT_FALSE(r.contains({10, 4}));
}

TEST(Region, UniteDisjoint) {
  const Region r = unite(box(0, 0, 10, 10), box(20, 0, 30, 10));
  EXPECT_EQ(r.area(), 200);
  EXPECT_EQ(r.rects().size(), 2u);
}

TEST(Region, UniteOverlapping) {
  const Region r = unite(box(0, 0, 10, 10), box(5, 5, 15, 15));
  EXPECT_EQ(r.area(), 100 + 100 - 25);
}

TEST(Region, UniteAbuttingMergesToOneRect) {
  // Canonical form merges: two abutting half-open boxes form one rect.
  const Region r = unite(box(0, 0, 10, 10), box(10, 0, 20, 10));
  ASSERT_EQ(r.rects().size(), 1u);
  EXPECT_EQ(r.rects()[0], makeRect(0, 0, 20, 10));
  const Region v = unite(box(0, 0, 10, 10), box(0, 10, 10, 20));
  ASSERT_EQ(v.rects().size(), 1u);
  EXPECT_EQ(v.rects()[0], makeRect(0, 0, 10, 20));
}

TEST(Region, IntersectSubtractXor) {
  const Region a = box(0, 0, 10, 10);
  const Region b = box(5, 0, 15, 10);
  EXPECT_EQ(intersect(a, b).area(), 50);
  EXPECT_EQ(subtract(a, b).area(), 50);
  EXPECT_EQ(exclusiveOr(a, b).area(), 100);
  EXPECT_EQ(subtract(a, a).area(), 0);
  EXPECT_TRUE(subtract(a, a).empty());
}

TEST(Region, CanonicalFormIsConstructionOrderIndependent) {
  // The same point set assembled differently must compare equal.
  const Region a = unite(unite(box(0, 0, 10, 10), box(10, 0, 20, 10)),
                         box(0, 10, 20, 20));
  const Region b = unite(unite(box(0, 0, 20, 5), box(0, 5, 20, 15)),
                         box(0, 15, 20, 20));
  EXPECT_EQ(a, b);
  ASSERT_EQ(a.rects().size(), 1u);
  EXPECT_EQ(a.rects()[0], makeRect(0, 0, 20, 20));
}

TEST(Region, FromRectsHandlesDuplicatesAndOverlaps) {
  const std::vector<Rect> rs = {makeRect(0, 0, 10, 10), makeRect(0, 0, 10, 10),
                                makeRect(2, 2, 8, 8)};
  EXPECT_EQ(Region::fromRects(rs).area(), 100);
}

TEST(Region, CoversAndOverlaps) {
  const Region a = unite(box(0, 0, 10, 10), box(20, 0, 30, 10));
  EXPECT_TRUE(a.covers(makeRect(2, 2, 8, 8)));
  EXPECT_FALSE(a.covers(makeRect(8, 2, 12, 8)));
  EXPECT_TRUE(a.overlaps(box(9, 9, 11, 11)));
  EXPECT_FALSE(a.overlaps(box(10, 0, 20, 10)));  // abuts only
}

TEST(Region, LShapeDecomposition) {
  const Region l = unite(box(0, 0, 20, 10), box(0, 10, 10, 20));
  EXPECT_EQ(l.area(), 300);
  // Canonical slabs: y-split at 10, vertically-mergeable columns merged.
  ASSERT_EQ(l.rects().size(), 2u);
  EXPECT_EQ(l.rects()[0], makeRect(0, 0, 20, 10));
  EXPECT_EQ(l.rects()[1], makeRect(0, 10, 10, 20));
}

TEST(Region, TransformedPreservesArea) {
  const Region l = unite(box(0, 0, 20, 10), box(0, 10, 10, 20));
  for (int i = 0; i < 8; ++i) {
    const Region t = l.transformed({static_cast<Orient>(i), {7, -3}});
    EXPECT_EQ(t.area(), l.area()) << i;
  }
}

TEST(Region, ExpandRect) {
  const Region r = box(0, 0, 10, 10).expanded(3);
  EXPECT_EQ(r.area(), 16 * 16);
  EXPECT_EQ(r.bbox(), makeRect(-3, -3, 13, 13));
}

TEST(Region, ExpandMergesNearbyRects) {
  const Region r = unite(box(0, 0, 10, 10), box(14, 0, 24, 10)).expanded(2);
  // Gap of 4 closes at expand 2.
  ASSERT_EQ(r.rects().size(), 1u);
  EXPECT_EQ(r.rects()[0], makeRect(-2, -2, 26, 12));
}

TEST(Region, ShrinkRect) {
  const Region r = box(0, 0, 10, 10).shrunk(3);
  ASSERT_EQ(r.rects().size(), 1u);
  EXPECT_EQ(r.rects()[0], makeRect(3, 3, 7, 7));
  EXPECT_TRUE(box(0, 0, 10, 10).shrunk(5).empty());
  EXPECT_TRUE(box(0, 0, 10, 10).shrunk(6).empty());
}

TEST(Region, ShrinkSeparatesNeck) {
  // Dumbbell: two 10x10 plates joined by a 2-wide neck.
  const Region r = unite(unite(box(0, 0, 10, 10), box(20, 0, 30, 10)),
                         box(10, 4, 20, 6));
  const Region s = r.shrunk(2);
  EXPECT_EQ(s.rects().size(), 2u);  // neck vanishes
  EXPECT_EQ(s.area(), 2 * 36);
}

TEST(Region, OpeningRemovesProtrusion) {
  // A 10x10 plate with a thin 2-wide tab; opening by 2 removes the tab.
  const Region r = unite(box(0, 0, 10, 10), box(10, 4, 18, 6));
  const Region opened = r.shrunk(2).expanded(2);
  EXPECT_EQ(opened, box(0, 0, 10, 10));
}

TEST(Region, ShrinkExpandIdentityOnFatRect) {
  const Region r = box(0, 0, 100, 50);
  EXPECT_EQ(r.shrunk(10).expanded(10), r);
}

TEST(Region, EdgesOfRect) {
  const auto es = box(0, 0, 10, 5).edges();
  ASSERT_EQ(es.size(), 4u);
  int v = 0, h = 0;
  Coord perim = 0;
  for (const Edge& e : es) {
    (e.vertical() ? v : h)++;
    perim += e.length();
  }
  EXPECT_EQ(v, 2);
  EXPECT_EQ(h, 2);
  EXPECT_EQ(perim, 30);
}

TEST(Region, EdgesOfAbuttedRectsHideInternalBoundary) {
  const Region r = unite(box(0, 0, 10, 10), box(10, 0, 20, 10));
  Coord perim = 0;
  for (const Edge& e : r.edges()) perim += e.length();
  EXPECT_EQ(perim, 2 * (20 + 10));
}

TEST(Region, EdgesOfLShape) {
  const Region l = unite(box(0, 0, 20, 10), box(0, 10, 10, 20));
  Coord perim = 0;
  for (const Edge& e : l.edges()) perim += e.length();
  EXPECT_EQ(perim, 80);  // L perimeter: 20+10+10+10+10+20
}

TEST(Region, ScaledDoublesCoordinates) {
  const Region r = box(1, 2, 5, 7).scaled(2);
  ASSERT_EQ(r.rects().size(), 1u);
  EXPECT_EQ(r.rects()[0], makeRect(2, 4, 10, 14));
}

TEST(RegionDistance, Metrics) {
  const Region a = box(0, 0, 10, 10);
  const Region b = box(13, 14, 20, 20);
  EXPECT_DOUBLE_EQ(regionDistance(a, b, Metric::kEuclidean), 5.0);
  EXPECT_DOUBLE_EQ(regionDistance(a, b, Metric::kOrthogonal), 4.0);
}

// ---------------------------------------------------------------------------
// Property tests: random rect soups, algebraic identities.
// ---------------------------------------------------------------------------

class RegionProperty : public ::testing::TestWithParam<unsigned> {};

std::vector<Rect> randomRects(std::mt19937& rng, int n) {
  std::uniform_int_distribution<Coord> c(-40, 40), s(1, 25);
  std::vector<Rect> out;
  out.reserve(n);
  for (int i = 0; i < n; ++i) {
    const Coord x = c(rng), y = c(rng);
    out.push_back(makeRect(x, y, x + s(rng), y + s(rng)));
  }
  return out;
}

/// Brute-force area by unit-pixel counting over the +/-70 window.
Coord pixelArea(const std::vector<Rect>& rects) {
  Coord n = 0;
  for (Coord y = -70; y < 70; ++y)
    for (Coord x = -70; x < 70; ++x) {
      for (const Rect& r : rects)
        if (r.contains(Point{x, y})) {
          ++n;
          break;
        }
    }
  return n;
}

TEST_P(RegionProperty, UnionAreaMatchesPixelCount) {
  std::mt19937 rng(GetParam());
  const auto rects = randomRects(rng, 12);
  EXPECT_EQ(Region::fromRects(rects).area(), pixelArea(rects));
}

TEST_P(RegionProperty, BooleanAlgebraIdentities) {
  std::mt19937 rng(GetParam() * 7919 + 1);
  const Region a = Region::fromRects(randomRects(rng, 8));
  const Region b = Region::fromRects(randomRects(rng, 8));
  // A = (A\B) u (A n B)
  EXPECT_EQ(unite(subtract(a, b), intersect(a, b)), a);
  // XOR = (A\B) u (B\A)
  EXPECT_EQ(exclusiveOr(a, b), unite(subtract(a, b), subtract(b, a)));
  // Inclusion-exclusion on areas.
  EXPECT_EQ(unite(a, b).area() + intersect(a, b).area(),
            a.area() + b.area());
  // Commutativity & idempotence.
  EXPECT_EQ(unite(a, b), unite(b, a));
  EXPECT_EQ(unite(a, a), a);
  EXPECT_EQ(intersect(a, a), a);
}

TEST_P(RegionProperty, MembershipMatchesBooleans) {
  std::mt19937 rng(GetParam() * 104729 + 3);
  const Region a = Region::fromRects(randomRects(rng, 6));
  const Region b = Region::fromRects(randomRects(rng, 6));
  const Region u = unite(a, b);
  const Region i = intersect(a, b);
  const Region s = subtract(a, b);
  std::uniform_int_distribution<Coord> c(-70, 70);
  for (int k = 0; k < 200; ++k) {
    const Point p{c(rng), c(rng)};
    const bool ia = a.contains(p), ib = b.contains(p);
    EXPECT_EQ(u.contains(p), ia || ib) << toString(p);
    EXPECT_EQ(i.contains(p), ia && ib) << toString(p);
    EXPECT_EQ(s.contains(p), ia && !ib) << toString(p);
  }
}

TEST_P(RegionProperty, ExpandShrinkDuality) {
  std::mt19937 rng(GetParam() * 31 + 17);
  const Region a = Region::fromRects(randomRects(rng, 6));
  // Erosion of dilation contains the original (closing is extensive).
  const Region closed = a.expanded(3).shrunk(3);
  EXPECT_TRUE(subtract(a, closed).empty());
  // Dilation of erosion is contained in the original (opening is
  // anti-extensive).
  const Region opened = a.shrunk(3).expanded(3);
  EXPECT_TRUE(subtract(opened, a).empty());
}

TEST_P(RegionProperty, EdgesCoverBoundaryExactly) {
  std::mt19937 rng(GetParam() * 613 + 5);
  const Region a = Region::fromRects(randomRects(rng, 8));
  // Sum of vertical edge lengths with interior right == sum with interior
  // left (the boundary closes), same for horizontal.
  Coord right = 0, left = 0, above = 0, below = 0;
  for (const Edge& e : a.edges()) {
    switch (e.interior) {
      case InteriorSide::kRight: right += e.length(); break;
      case InteriorSide::kLeft: left += e.length(); break;
      case InteriorSide::kAbove: above += e.length(); break;
      case InteriorSide::kBelow: below += e.length(); break;
    }
  }
  EXPECT_EQ(right, left);
  EXPECT_EQ(above, below);
  // Spot-check: just inside each vertical edge is interior; just outside
  // is exterior.
  for (const Edge& e : a.edges()) {
    if (!e.vertical()) continue;
    const Coord sampleY = e.lo;  // always in [lo,hi)
    const int in = e.interior == InteriorSide::kRight ? 1 : -1;
    EXPECT_TRUE(a.contains({e.pos + (in > 0 ? 0 : -1), sampleY}));
    EXPECT_FALSE(a.contains({e.pos + (in > 0 ? -1 : 0), sampleY}));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegionProperty,
                         ::testing::Range(1u, 21u));

}  // namespace
}  // namespace dic::geom
