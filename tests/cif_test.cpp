// Tests for the CIF parser/writer including the DIC 4N/4D extensions.
#include <gtest/gtest.h>

#include "cif/parser.hpp"
#include "cif/writer.hpp"

namespace dic::cif {
namespace {

TEST(CifParser, MinimalFile) {
  const CifFile f = parse("E");
  EXPECT_TRUE(f.symbols.empty());
  EXPECT_TRUE(f.top.elements.empty());
}

TEST(CifParser, BoxWithLayer) {
  const CifFile f = parse("L NM; B 20 10 5 5; E");
  ASSERT_EQ(f.top.elements.size(), 1u);
  const CifElement& e = f.top.elements[0];
  EXPECT_EQ(e.kind, CifElement::Kind::kBox);
  EXPECT_EQ(e.layer, "NM");
  EXPECT_EQ(e.length, 20);
  EXPECT_EQ(e.width, 10);
  EXPECT_EQ(e.center, (geom::Point{5, 5}));
}

TEST(CifParser, BoxWithRotatedDirection) {
  // Direction (0,1) swaps length and width.
  const CifFile f = parse("L NM; B 20 10 0 0 0 1; E");
  ASSERT_EQ(f.top.elements.size(), 1u);
  EXPECT_EQ(f.top.elements[0].length, 10);
  EXPECT_EQ(f.top.elements[0].width, 20);
}

TEST(CifParser, WireAndPolygon) {
  const CifFile f = parse("L NP; W 4 0 0 10 0 10 10; P 0 0 8 0 0 8; E");
  ASSERT_EQ(f.top.elements.size(), 2u);
  EXPECT_EQ(f.top.elements[0].kind, CifElement::Kind::kWire);
  EXPECT_EQ(f.top.elements[0].width, 4);
  ASSERT_EQ(f.top.elements[0].path.size(), 3u);
  EXPECT_EQ(f.top.elements[1].kind, CifElement::Kind::kPolygon);
  ASSERT_EQ(f.top.elements[1].path.size(), 3u);
}

TEST(CifParser, RoundFlash) {
  const CifFile f = parse("L NM; R 10 3 4; E");
  ASSERT_EQ(f.top.elements.size(), 1u);
  EXPECT_EQ(f.top.elements[0].kind, CifElement::Kind::kFlash);
  EXPECT_EQ(f.top.elements[0].width, 10);
}

TEST(CifParser, SymbolDefinitionAndCall) {
  const CifFile f = parse(
      "DS 1; 9 cellA; L ND; B 4 4 0 0; DF;"
      "C 1 T 100 200; C 1 M X T 5 5; E");
  ASSERT_EQ(f.symbols.size(), 1u);
  EXPECT_EQ(f.symbols.at(1).name, "cellA");
  ASSERT_EQ(f.top.calls.size(), 2u);
  EXPECT_EQ(f.top.calls[0].transform.t, (geom::Point{100, 200}));
  EXPECT_EQ(f.top.calls[1].transform.orient, geom::Orient::kMX);
}

TEST(CifParser, CallTransformComposition) {
  // Mirror then translate: p -> (-p.x + 5, p.y + 7).
  const CifFile f = parse("DS 1; L ND; B 2 2 0 0; DF; C 1 M X T 5 7; E");
  const geom::Transform t = f.top.calls[0].transform;
  EXPECT_EQ(t.apply(geom::Point{1, 1}), (geom::Point{4, 8}));
}

TEST(CifParser, RotationCommand) {
  const CifFile f = parse("DS 1; L ND; B 2 2 0 0; DF; C 1 R 0 1; E");
  EXPECT_EQ(f.top.calls[0].transform.orient, geom::Orient::kR90);
}

TEST(CifParser, NetExtensionAppliesToNextPrimitive) {
  const CifFile f = parse("L NM; 4N VDD; B 4 4 0 0; B 4 4 20 0; E");
  ASSERT_EQ(f.top.elements.size(), 2u);
  EXPECT_EQ(f.top.elements[0].net, "VDD");
  EXPECT_EQ(f.top.elements[1].net, "");
}

TEST(CifParser, DeviceTypeExtension) {
  const CifFile f =
      parse("DS 2; 9 mytran; 4D TRAN; L NP; B 6 2 0 0; DF; E");
  EXPECT_EQ(f.symbols.at(2).deviceType, "TRAN");
}

TEST(CifParser, DsScaleFactor) {
  const CifFile f = parse("DS 1 2 1; L ND; B 4 4 0 0; DF; E");
  EXPECT_EQ(f.symbols.at(1).scaleNum, 2);
  EXPECT_EQ(f.symbols.at(1).scaleDen, 1);
}

TEST(CifParser, CommentsAndSeparators) {
  const CifFile f =
      parse("(header comment (nested));\nL NM;\n  B 4,4 0 0; E");
  ASSERT_EQ(f.top.elements.size(), 1u);
}

TEST(CifParser, Errors) {
  EXPECT_THROW(parse("L NM; B 4 4 0 0;"), CifError);        // missing E
  EXPECT_THROW(parse("B 4 4 0 0; E"), CifError);            // no layer
  EXPECT_THROW(parse("L NM; B 0 4 0 0; E"), CifError);      // zero box
  EXPECT_THROW(parse("DS 1; DS 2; DF; DF; E"), CifError);   // nested DS
  EXPECT_THROW(parse("DF; E"), CifError);                   // DF without DS
  EXPECT_THROW(parse("DS 1; L ND; B 2 2 0 0; DF; DS 1; DF; E"),
               CifError);                                   // duplicate id
  EXPECT_THROW(parse("L NM; W 4; E"), CifError);            // empty wire
  EXPECT_THROW(parse("Z 1 2; E"), CifError);                // unknown cmd
  EXPECT_THROW(parse("L NM; B 4 4 0 0 1 1; E"), CifError);  // 45-degree box
}

TEST(CifParser, ErrorCarriesOffset) {
  try {
    parse("L NM; Q;");
    FAIL() << "expected CifError";
  } catch (const CifError& e) {
    EXPECT_GT(e.offset(), 0u);
  }
}

TEST(CifWriter, RoundTrip) {
  const std::string src =
      "DS 1; 9 leaf; 4D TRAN; L NP; B 6 2 0 0; L ND; 4N a; B 2 6 0 0; DF;"
      "DS 2; 9 mid; L NM; W 4 0 0 20 0; DF;"
      "9 top; C 1 T 10 10; C 2 M Y T 0 50; L NM; 4N VDD; B 8 4 4 2; E";
  const CifFile f1 = parse(src);
  const std::string out = write(f1);
  const CifFile f2 = parse(out);
  ASSERT_EQ(f2.symbols.size(), f1.symbols.size());
  EXPECT_EQ(f2.symbols.at(1).deviceType, "TRAN");
  EXPECT_EQ(f2.symbols.at(1).elements[1].net, "a");
  EXPECT_EQ(f2.top.calls.size(), f1.top.calls.size());
  EXPECT_EQ(f2.top.calls[1].transform, f1.top.calls[1].transform);
  EXPECT_EQ(f2.top.elements[0].net, "VDD");
}

TEST(CifWriter, AllOrientationsRoundTrip) {
  for (int i = 0; i < 8; ++i) {
    CifFile f;
    CifSymbol sym;
    sym.id = 1;
    CifElement e;
    e.kind = CifElement::Kind::kBox;
    e.layer = "NM";
    e.length = 4;
    e.width = 2;
    sym.elements.push_back(e);
    f.symbols[1] = sym;
    f.top.calls.push_back(
        {1, {static_cast<geom::Orient>(i), {10, -20}}});
    const CifFile g = parse(write(f));
    ASSERT_EQ(g.top.calls.size(), 1u) << i;
    EXPECT_EQ(g.top.calls[0].transform,
              (geom::Transform{static_cast<geom::Orient>(i), {10, -20}}))
        << i;
  }
}

}  // namespace
}  // namespace dic::cif
