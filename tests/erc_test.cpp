// Tests for the four non-geometric construction rules.
#include <gtest/gtest.h>

#include "erc/erc.hpp"
#include "netlist/netlist.hpp"
#include "workload/generator.hpp"

namespace dic::erc {
namespace {

using geom::makeRect;
using layout::makeBox;
using layout::makeWire;

class ErcTest : public ::testing::Test {
 protected:
  tech::Technology t = tech::nmos();
  const int nm = *t.layerByName("metal");
  const int nd = *t.layerByName("diff");
  const int np = *t.layerByName("poly");
  const geom::Coord L = t.lambda();

  netlist::Netlist extractTop(layout::Library& lib, layout::CellId root) {
    return netlist::extract(lib, root, t);
  }
};

TEST_F(ErcTest, PowerGroundShortDetected) {
  layout::Library lib;
  layout::Cell top;
  top.name = "top";
  top.elements.push_back(makeBox(nm, makeRect(0, 0, 20 * L, 3 * L), "VDD"));
  top.elements.push_back(
      makeBox(nm, makeRect(0, 10 * L, 20 * L, 13 * L), "GND"));
  // Strap shorting them.
  top.elements.push_back(makeWire(nm, {{10 * L, 3 * L / 2},
                                       {10 * L, 11 * L + L / 2}},
                                  3 * L));
  const auto root = lib.addCell(std::move(top));
  const auto nl = extractTop(lib, root);
  const auto rep = check(nl, t);
  bool found = false;
  for (const auto& v : rep.violations())
    if (v.rule == "ERC.PGSHORT") found = true;
  EXPECT_TRUE(found) << rep.text();
}

TEST_F(ErcTest, NoShortNoViolation) {
  layout::Library lib;
  layout::Cell top;
  top.name = "top";
  top.elements.push_back(makeBox(nm, makeRect(0, 0, 20 * L, 3 * L), "VDD"));
  top.elements.push_back(
      makeBox(nm, makeRect(0, 10 * L, 20 * L, 13 * L), "GND"));
  const auto root = lib.addCell(std::move(top));
  const auto rep = check(extractTop(lib, root), t);
  for (const auto& v : rep.violations()) EXPECT_NE(v.rule, "ERC.PGSHORT");
}

TEST_F(ErcTest, DanglingNetDetected) {
  layout::Library lib;
  layout::Cell top;
  top.name = "top";
  top.elements.push_back(
      makeBox(nm, makeRect(0, 0, 10 * L, 3 * L), "lonely"));
  const auto root = lib.addCell(std::move(top));
  const auto rep = check(extractTop(lib, root), t);
  ASSERT_EQ(rep.count(), 1u);
  EXPECT_EQ(rep.violations()[0].rule, "ERC.DANGLING");
}

TEST_F(ErcTest, PowerNetsExemptFromDangling) {
  layout::Library lib;
  layout::Cell top;
  top.name = "top";
  top.elements.push_back(makeBox(nm, makeRect(0, 0, 10 * L, 3 * L), "VDD"));
  const auto root = lib.addCell(std::move(top));
  const auto rep = check(extractTop(lib, root), t);
  EXPECT_TRUE(rep.empty()) << rep.text();
}

TEST_F(ErcTest, BusMayNotConnectToPower) {
  layout::Library lib;
  layout::Cell top;
  top.name = "top";
  // One piece of metal carrying both a bus label and the power label.
  top.elements.push_back(
      makeBox(nm, makeRect(0, 0, 20 * L, 3 * L), "BUS3"));
  top.elements.push_back(
      makeBox(nm, makeRect(10 * L, 0, 30 * L, 3 * L), "VDD"));
  const auto root = lib.addCell(std::move(top));
  const auto rep = check(extractTop(lib, root), t);
  bool found = false;
  for (const auto& v : rep.violations())
    if (v.rule == "ERC.BUS_PG") found = true;
  EXPECT_TRUE(found) << rep.text();
}

TEST_F(ErcTest, DepletionDeviceMayNotConnectToGround) {
  layout::Library lib;
  const workload::NmosCells cells = workload::installNmosCells(lib, t);
  layout::Cell top;
  top.name = "top";
  top.instances.push_back({cells.dtran, {geom::Orient::kR0, {0, 0}}, "d1"});
  // Tie the source to GND -- the rule violation.
  top.elements.push_back(
      makeWire(nd, {{0, -3 * L}, {0, -20 * L}}, 2 * L, "GND"));
  top.elements.push_back(makeWire(nd, {{0, 3 * L}, {0, 20 * L}}, 2 * L, "x"));
  top.elements.push_back(
      makeWire(np, {{-3 * L, 0}, {-20 * L, 0}}, 2 * L, "y"));
  const auto root = lib.addCell(std::move(top));
  const auto rep = check(extractTop(lib, root), t);
  bool found = false;
  for (const auto& v : rep.violations())
    if (v.rule == "ERC.DEPL_GND") found = true;
  EXPECT_TRUE(found) << rep.text();
}

TEST_F(ErcTest, EnhancementToGroundIsFine) {
  layout::Library lib;
  const workload::NmosCells cells = workload::installNmosCells(lib, t);
  layout::Cell top;
  top.name = "top";
  top.instances.push_back({cells.tran, {geom::Orient::kR0, {0, 0}}, "t1"});
  top.elements.push_back(
      makeWire(nd, {{0, -3 * L}, {0, -20 * L}}, 2 * L, "GND"));
  top.elements.push_back(makeWire(nd, {{0, 3 * L}, {0, 20 * L}}, 2 * L, "x"));
  top.elements.push_back(
      makeWire(np, {{-3 * L, 0}, {-20 * L, 0}}, 2 * L, "y"));
  const auto root = lib.addCell(std::move(top));
  const auto rep = check(extractTop(lib, root), t);
  for (const auto& v : rep.violations()) EXPECT_NE(v.rule, "ERC.DEPL_GND");
}

TEST_F(ErcTest, OptionsDisableChecks) {
  layout::Library lib;
  layout::Cell top;
  top.name = "top";
  top.elements.push_back(
      makeBox(nm, makeRect(0, 0, 10 * L, 3 * L), "lonely"));
  const auto root = lib.addCell(std::move(top));
  Options o;
  o.checkDanglingNets = false;
  EXPECT_TRUE(check(netlist::extract(lib, root, t), t, o).empty());
}

TEST_F(ErcTest, CleanGeneratedChipPassesErc) {
  workload::GeneratedChip chip = workload::generateChip(
      t, {.blockRows = 1, .blockCols = 1, .invRows = 2, .invCols = 2,
          .withPads = true});
  const auto nl = netlist::extract(chip.lib, chip.top, t);
  const auto rep = check(nl, t);
  EXPECT_TRUE(rep.empty()) << rep.text();
}

}  // namespace
}  // namespace dic::erc
