// Tests for the layout database: elements, hierarchy, flattening, CIF IO.
#include <gtest/gtest.h>

#include "cif/parser.hpp"
#include "cif/writer.hpp"
#include "engine/hierarchy_view.hpp"
#include "layout/cifio.hpp"
#include "layout/library.hpp"
#include "tech/technology.hpp"

namespace dic::layout {
namespace {

using geom::makeRect;
using geom::Point;

TEST(Element, BoxRegionAndBBox) {
  const Element e = makeBox(0, makeRect(0, 0, 10, 20));
  EXPECT_EQ(e.region().area(), 200);
  EXPECT_EQ(e.bbox(), makeRect(0, 0, 10, 20));
}

TEST(Element, WireRegionSquareCaps) {
  const Element e = makeWire(0, {{0, 0}, {10, 0}}, 4);
  // Segment inflated by half width in all directions.
  EXPECT_EQ(e.region().bbox(), makeRect(-2, -2, 12, 2));
  EXPECT_EQ(e.region().area(), 14 * 4);
  EXPECT_EQ(e.bbox(), makeRect(-2, -2, 12, 2));
}

TEST(Element, LWireRegion) {
  const Element e = makeWire(0, {{0, 0}, {10, 0}, {10, 10}}, 4);
  // Two segments; the corner is covered once.
  const geom::Region r = e.region();
  EXPECT_TRUE(r.contains({10, 10}));
  EXPECT_TRUE(r.contains({0, 0}));
  EXPECT_EQ(r.area(), 14 * 4 + 14 * 4 - 4 * 4);
}

TEST(Element, PolygonRegion) {
  const Element e =
      makePolygon(0, {{0, 0}, {20, 0}, {20, 10}, {10, 10}, {10, 20}, {0, 20}});
  EXPECT_EQ(e.region().area(), 300);
}

TEST(Element, TransformedWire) {
  const Element e = makeWire(0, {{0, 0}, {10, 0}}, 4);
  const Element t = e.transformed({geom::Orient::kR90, {0, 0}});
  EXPECT_EQ(t.region().bbox(), makeRect(-2, -2, 2, 12));
}

TEST(Library, AddAndFind) {
  Library lib;
  Cell c;
  c.name = "leaf";
  const CellId id = lib.addCell(std::move(c));
  EXPECT_EQ(lib.findCell("leaf"), std::optional<CellId>(id));
  EXPECT_FALSE(lib.findCell("nope").has_value());
  Cell dup;
  dup.name = "leaf";
  EXPECT_THROW(lib.addCell(std::move(dup)), std::invalid_argument);
}

Library makeTwoLevel(CellId& top, CellId& leaf) {
  Library lib;
  Cell l;
  l.name = "leaf";
  l.elements.push_back(makeBox(0, makeRect(0, 0, 10, 10)));
  leaf = lib.addCell(std::move(l));
  Cell t;
  t.name = "top";
  t.elements.push_back(makeBox(1, makeRect(0, 0, 100, 5)));
  t.instances.push_back({leaf, {geom::Orient::kR0, {20, 20}}, "a"});
  t.instances.push_back({leaf, {geom::Orient::kR90, {60, 20}}, "b"});
  top = lib.addCell(std::move(t));
  return lib;
}

TEST(Library, CellBBoxRecursive) {
  CellId top, leaf;
  Library lib = makeTwoLevel(top, leaf);
  EXPECT_EQ(lib.cellBBox(leaf), makeRect(0, 0, 10, 10));
  // b instance: R90 of (0,0,10,10) is (-10,0,0,10), translated to (50,20).
  EXPECT_EQ(lib.cellBBox(top), makeRect(0, 0, 100, 30));
}

TEST(Library, FlattenPathsAndTransforms) {
  CellId top, leaf;
  Library lib = makeTwoLevel(top, leaf);
  std::vector<FlatElement> fe;
  std::vector<FlatDevice> fd;
  lib.flatten(top, fe, fd);
  ASSERT_EQ(fe.size(), 3u);
  EXPECT_TRUE(fd.empty());
  EXPECT_EQ(fe[0].path, "");
  EXPECT_EQ(fe[1].path, "a");
  EXPECT_EQ(fe[2].path, "b");
  EXPECT_EQ(fe[1].element.bbox(), makeRect(20, 20, 30, 30));
  EXPECT_EQ(fe[2].element.bbox(), makeRect(50, 20, 60, 30));
}

TEST(Library, FlattenStopsAtDevices) {
  Library lib;
  Cell dev;
  dev.name = "tran";
  dev.deviceType = "TRAN";
  dev.elements.push_back(makeBox(0, makeRect(-5, -5, 5, 5)));
  dev.ports.push_back({"G", 0, makeRect(-5, -5, -4, 5), 0});
  const CellId devId = lib.addCell(std::move(dev));
  Cell t;
  t.name = "top";
  t.instances.push_back({devId, {geom::Orient::kR0, {100, 100}}, "t1"});
  const CellId top = lib.addCell(std::move(t));

  std::vector<FlatElement> fe;
  std::vector<FlatDevice> fd;
  lib.flatten(top, fe, fd, /*includeDeviceGeometry=*/false);
  EXPECT_TRUE(fe.empty());
  ASSERT_EQ(fd.size(), 1u);
  EXPECT_EQ(fd[0].deviceType, "TRAN");
  EXPECT_EQ(fd[0].path, "t1");
  EXPECT_EQ(fd[0].ports[0].at, makeRect(95, 95, 96, 105));

  fe.clear();
  fd.clear();
  lib.flatten(top, fe, fd, /*includeDeviceGeometry=*/true);
  EXPECT_EQ(fe.size(), 1u);
  EXPECT_EQ(fd.size(), 1u);
}

TEST(Library, WindowedCollectionPrunes) {
  CellId top, leaf;
  Library lib = makeTwoLevel(top, leaf);
  engine::HierarchyView view(lib, top);
  std::vector<engine::WindowElement> out;
  view.collectWindow(top, geom::identityTransform(), makeRect(19, 19, 31, 31),
                     "", out);
  // The top strip (y<=5) does not intersect; instance b does not.
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].path, "a");
}

TEST(Library, SizeStats) {
  CellId top, leaf;
  Library lib = makeTwoLevel(top, leaf);
  const Library::SizeStats s = lib.sizeStats(top);
  EXPECT_EQ(s.cells, 2u);
  EXPECT_EQ(s.hierarchicalElements, 2u);
  EXPECT_EQ(s.flatElements, 3u);
  EXPECT_EQ(s.maxDepth, 2);
}

TEST(Library, ForEachCellOncePostOrder) {
  CellId top, leaf;
  Library lib = makeTwoLevel(top, leaf);
  std::vector<CellId> order;
  lib.forEachCellOnce(top, [&](CellId id) { order.push_back(id); });
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], leaf);  // substrates first
  EXPECT_EQ(order[1], top);
}

TEST(CifIo, ImportExportRoundTrip) {
  const tech::Technology t = tech::nmos();
  const std::string src =
      "DS 1; 9 leaf; 4D TRAN; L NP; B 1500 500 0 0; L ND; B 500 1500 0 0; "
      "DF; 9 top; L NM; 4N VDD; B 1000 750 500 375; C 1 T 5000 5000; E";
  Library lib;
  auto resolver = [&](const std::string& n) {
    return t.layerByCifName(n).value_or(-1);
  };
  const cif::CifFile parsed = cif::parse(src);
  const CellId rootId = fromCif(parsed, lib, resolver);
  EXPECT_EQ(lib.cell(rootId).name, "top");
  ASSERT_EQ(lib.cell(rootId).elements.size(), 1u);
  EXPECT_EQ(lib.cell(rootId).elements[0].net, "VDD");
  ASSERT_EQ(lib.cell(rootId).instances.size(), 1u);
  const CellId leafId = lib.cell(rootId).instances[0].cell;
  EXPECT_EQ(lib.cell(leafId).deviceType, "TRAN");

  // Export and re-import; structure must survive.
  const cif::CifFile out = toCif(lib, rootId, [&](int l) {
    return t.layer(l).cifName;
  });
  Library lib2;
  const CellId root2 = fromCif(out, lib2, resolver);
  EXPECT_EQ(lib2.cell(root2).elements.size(), 1u);
  EXPECT_EQ(lib2.cell(root2).instances.size(), 1u);
  EXPECT_EQ(lib2.cellBBox(root2), lib.cellBBox(rootId));
}

TEST(CifIo, ScaleFactorApplies) {
  const tech::Technology t = tech::nmos();
  Library lib;
  auto resolver = [&](const std::string& n) {
    return t.layerByCifName(n).value_or(-1);
  };
  const CellId root = fromCif(
      cif::parse("DS 1 2 1; L NM; B 10 10 0 0; DF; 9 top; C 1; E"), lib,
      resolver);
  const CellId leaf = lib.cell(root).instances[0].cell;
  EXPECT_EQ(lib.cell(leaf).elements[0].bbox(), makeRect(-10, -10, 10, 10));
}

TEST(CifIo, UnknownLayerThrows) {
  Library lib;
  EXPECT_THROW(fromCif(cif::parse("L XX; B 4 4 0 0; E"), lib,
                       [](const std::string&) { return -1; }),
               std::runtime_error);
}

}  // namespace
}  // namespace dic::layout
