// Tests for expand/shrink metric behaviour (Fig. 3), width checking
// (Fig. 4 left) and spacing checking (Fig. 4 right).
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "geom/expand.hpp"
#include "geom/spacing.hpp"
#include "geom/width.hpp"

namespace dic::geom {
namespace {

Region box(Coord x1, Coord y1, Coord x2, Coord y2) {
  return Region(makeRect(x1, y1, x2, y2));
}

// --- Fig. 3: Orthogonal vs Euclidean expand/shrink ------------------------

TEST(Fig3, OrthogonalExpandPreservesSquareCorners) {
  const Region sq = box(0, 0, 100, 100);
  const Region e = sq.expanded(10);
  ASSERT_EQ(e.rects().size(), 1u);  // still a square: corners preserved
  EXPECT_EQ(e.area(), 120 * 120);
}

TEST(Fig3, EuclideanExpandRoundsCorners) {
  const Rect sq = makeRect(0, 0, 100, 100);
  const Polygon e = euclideanExpand(sq, 10, 16);
  const double expect =
      100.0 * 100 + 4 * 100 * 10 + std::numbers::pi * 10 * 10;
  // Sampled arcs underestimate the disc slightly.
  EXPECT_NEAR(e.area(), expect, expect * 0.01);
  EXPECT_LT(e.area(), 120.0 * 120);  // strictly smaller than orthogonal
}

TEST(Fig3, BothShrinksYieldSquareCorners) {
  // Shrink of a convex Manhattan shape is identical under both metrics.
  const Region sq = box(0, 0, 100, 100);
  const Region s = sq.shrunk(10);
  ASSERT_EQ(s.rects().size(), 1u);
  EXPECT_EQ(s.rects()[0], makeRect(10, 10, 90, 90));
}

TEST(Fig3, EuclideanExpandAreaFormulaMatchesSampledPolygon) {
  const Region l = unite(box(0, 0, 200, 100), box(0, 100, 100, 200));
  const double formula = euclideanExpandArea(l, 10);
  // Steiner: A + P*d + 5 quarter-discs - 1 reflex square.
  const double expect = 30000.0 + 800 * 10 +
                        5 * std::numbers::pi * 100 / 4 - 100;
  EXPECT_NEAR(formula, expect, 1e-6);
}

// --- Fig. 4 (left): width-check corner pathologies ------------------------

TEST(Fig4, EdgeBasedWidthCleanOnLegalSquare) {
  EXPECT_TRUE(checkWidthEdges(box(0, 0, 100, 100), 20).empty());
}

TEST(Fig4, EdgeBasedWidthFlagsNarrowBox) {
  const auto v = checkWidthEdges(box(0, 0, 10, 100), 20);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].measured, 10);
}

TEST(Fig4, EdgeBasedWidthFlagsNeck) {
  const Region dumbbell = unite(
      unite(box(0, 0, 100, 100), box(200, 0, 300, 100)), box(100, 40, 200, 60));
  const auto v = checkWidthEdges(dumbbell, 40);
  ASSERT_FALSE(v.empty());
  EXPECT_EQ(v[0].measured, 20);
}

TEST(Fig4, EdgeBasedWidthIgnoresExteriorGaps) {
  // Two separate legal boxes: gap is spacing, not width.
  const Region two = unite(box(0, 0, 100, 100), box(110, 0, 210, 100));
  EXPECT_TRUE(checkWidthEdges(two, 40).empty());
}

TEST(Fig4, OrthogonalShrinkExpandCleanOnSquare) {
  EXPECT_TRUE(
      checkWidthShrinkExpand(box(0, 0, 100, 100), 20, Metric::kOrthogonal)
          .empty());
}

TEST(Fig4, EuclideanShrinkExpandFlagsEveryCorner) {
  // The paper: "yields errors at every corner when the Euclidean technique
  // is used". A legal square has 4 convex corners -> 4 false errors.
  const auto v =
      checkWidthShrinkExpand(box(0, 0, 100, 100), 20, Metric::kEuclidean);
  EXPECT_EQ(v.size(), 4u);
}

TEST(Fig4, EuclideanCornerFalseErrorCountGrowsWithCorners) {
  // Staircase with k steps has 2+k+... convex corners; count them.
  Region stair = box(0, 0, 50, 50);
  stair = unite(stair, box(50, 50, 100, 100));
  stair = unite(stair, box(100, 100, 150, 150));
  int convex = 0;
  for (const Corner& c : regionCorners(stair))
    if (c.convex) ++convex;
  const auto v = checkWidthShrinkExpand(stair, 10, Metric::kEuclidean);
  // Every convex corner with a fat interior produces a defect.
  EXPECT_EQ(static_cast<int>(v.size()), convex);
}

TEST(Fig4, BothTechniquesAgreeOnRealViolation) {
  const Region narrow = box(0, 0, 10, 100);
  EXPECT_FALSE(
      checkWidthShrinkExpand(narrow, 20, Metric::kOrthogonal).empty());
  EXPECT_FALSE(checkWidthEdges(narrow, 20).empty());
}

// --- Fig. 4 (right): spacing-check metric pathologies ---------------------

TEST(Fig4, SpacingStraightGapBothMetricsAgree) {
  const Region a = box(0, 0, 100, 100);
  const Region b = box(130, 0, 230, 100);  // gap 30
  EXPECT_TRUE(checkSpacing(a, b, 30, Metric::kEuclidean).empty());
  EXPECT_TRUE(checkSpacing(a, b, 30, Metric::kOrthogonal).empty());
  EXPECT_FALSE(checkSpacing(a, b, 31, Metric::kEuclidean).empty());
  EXPECT_FALSE(checkSpacing(a, b, 31, Metric::kOrthogonal).empty());
}

TEST(Fig4, SpacingDiagonalCornersMetricsDisagree) {
  // Diagonal offset (21,21): Chebyshev 21 < 30 flags; Euclid 29.7 < 30
  // flags too. Offset (25,25): Chebyshev 25 flags, Euclid 35.36 passes.
  const Region a = box(0, 0, 100, 100);
  const Region b = box(125, 125, 225, 225);
  EXPECT_FALSE(checkSpacing(a, b, 30, Metric::kOrthogonal).empty());
  EXPECT_TRUE(checkSpacing(a, b, 30, Metric::kEuclidean).empty());
}

TEST(Fig4, SpacingReportsMeasuredDistance) {
  const Region a = box(0, 0, 100, 100);
  const Region b = box(103, 104, 200, 200);
  const auto v = checkSpacing(a, b, 30, Metric::kEuclidean);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_DOUBLE_EQ(v[0].measured, 5.0);
}

TEST(Fig4, TouchingShapesReportZero) {
  const auto v =
      checkSpacing(box(0, 0, 10, 10), box(10, 0, 20, 10), 5,
                   Metric::kEuclidean);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_DOUBLE_EQ(v[0].measured, 0.0);
}

TEST(DistanceBelow, EarlyOut) {
  const Region a = box(0, 0, 10, 10);
  const Region b = box(100, 0, 110, 10);
  EXPECT_FALSE(distanceBelow(a, b, 50, Metric::kEuclidean).has_value());
  const auto d = distanceBelow(a, b, 91, Metric::kEuclidean);
  ASSERT_TRUE(d.has_value());
  EXPECT_DOUBLE_EQ(*d, 90.0);
}

// --- Disagreement-band property sweep --------------------------------------

class MetricSweep : public ::testing::TestWithParam<int> {};

TEST_P(MetricSweep, DiagonalDisagreementBand) {
  // For diagonal offsets t in (s/sqrt(2), s), orthogonal flags but
  // Euclidean does not -- exactly the paper's corner-to-corner false-error
  // band.
  const Coord s = 40;
  const Coord t = GetParam();
  const Region a = box(0, 0, 100, 100);
  const Region b = box(100 + t, 100 + t, 200 + t, 200 + t);
  const bool orth = !checkSpacing(a, b, s, Metric::kOrthogonal).empty();
  const bool euc = !checkSpacing(a, b, s, Metric::kEuclidean).empty();
  const double euclid = std::hypot(double(t), double(t));
  EXPECT_EQ(orth, t < s);
  EXPECT_EQ(euc, euclid < double(s));
  if (t < s && euclid >= double(s)) {
    EXPECT_TRUE(orth && !euc) << "disagreement band";
  }
}

INSTANTIATE_TEST_SUITE_P(Offsets, MetricSweep,
                         ::testing::Values(10, 20, 28, 29, 30, 33, 36, 39, 40,
                                           45));

}  // namespace
}  // namespace dic::geom
