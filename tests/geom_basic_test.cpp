// Unit tests for points, rects, transforms and polygons.
#include <gtest/gtest.h>

#include "geom/polygon.hpp"
#include "geom/rect.hpp"
#include "geom/transform.hpp"
#include "geom/types.hpp"

namespace dic::geom {
namespace {

TEST(Point, Arithmetic) {
  const Point a{3, 4};
  const Point b{-1, 2};
  EXPECT_EQ(a + b, (Point{2, 6}));
  EXPECT_EQ(a - b, (Point{4, 2}));
  EXPECT_EQ(a * 2, (Point{6, 8}));
  EXPECT_EQ(-a, (Point{-3, -4}));
}

TEST(Point, CrossAndDot) {
  EXPECT_EQ(cross({1, 0}, {0, 1}), 1);
  EXPECT_EQ(cross({0, 1}, {1, 0}), -1);
  EXPECT_EQ(dot({3, 4}, {3, 4}), 25);
}

TEST(Point, Metrics) {
  EXPECT_DOUBLE_EQ(length({3, 4}), 5.0);
  EXPECT_EQ(chebyshev({3, -4}), 4);
  EXPECT_EQ(length2({3, 4}), 25);
  EXPECT_DOUBLE_EQ(pointDistance({0, 0}, {3, 4}, Metric::kEuclidean), 5.0);
  EXPECT_DOUBLE_EQ(pointDistance({0, 0}, {3, 4}, Metric::kOrthogonal), 4.0);
}

TEST(Rect, EmptyAndArea) {
  EXPECT_TRUE(Rect({{0, 0}, {0, 5}}).empty());
  EXPECT_TRUE(Rect({{2, 0}, {1, 5}}).empty());
  const Rect r = makeRect(0, 0, 10, 5);
  EXPECT_FALSE(r.empty());
  EXPECT_EQ(r.area(), 50);
  EXPECT_EQ(r.width(), 10);
  EXPECT_EQ(r.height(), 5);
}

TEST(Rect, ContainsHalfOpen) {
  const Rect r = makeRect(0, 0, 10, 10);
  EXPECT_TRUE(r.contains({0, 0}));
  EXPECT_FALSE(r.contains({10, 10}));
  EXPECT_TRUE(r.containsClosed({10, 10}));
}

TEST(Rect, IntersectAndBound) {
  const Rect a = makeRect(0, 0, 10, 10);
  const Rect b = makeRect(5, 5, 15, 15);
  EXPECT_EQ(intersect(a, b), makeRect(5, 5, 10, 10));
  EXPECT_EQ(bound(a, b), makeRect(0, 0, 15, 15));
  EXPECT_TRUE(overlaps(a, b));
  EXPECT_FALSE(overlaps(a, makeRect(10, 0, 20, 10)));  // abutting, half-open
  EXPECT_TRUE(closedTouch(a, makeRect(10, 0, 20, 10)));
  EXPECT_TRUE(closedTouch(a, makeRect(10, 10, 20, 20)));  // corner touch
  EXPECT_FALSE(closedTouch(a, makeRect(11, 11, 20, 20)));
}

TEST(Rect, Distance) {
  const Rect a = makeRect(0, 0, 10, 10);
  EXPECT_DOUBLE_EQ(rectDistance(a, makeRect(13, 14, 20, 20),
                                Metric::kEuclidean),
                   5.0);
  EXPECT_DOUBLE_EQ(rectDistance(a, makeRect(13, 14, 20, 20),
                                Metric::kOrthogonal),
                   4.0);
  EXPECT_DOUBLE_EQ(rectDistance(a, makeRect(5, 5, 20, 20),
                                Metric::kEuclidean),
                   0.0);
  EXPECT_EQ(rectDistance2(a, makeRect(13, 14, 20, 20)), 25);
}

TEST(Transform, EightOrientationsRoundTrip) {
  const Point p{7, 3};
  for (int i = 0; i < 8; ++i) {
    const Transform t{static_cast<Orient>(i), {11, -5}};
    const Transform inv = inverse(t);
    EXPECT_EQ(inv.apply(t.apply(p)), p) << "orient " << i;
  }
}

TEST(Transform, ComposeMatchesSequentialApplication) {
  const Point p{7, 3};
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) {
      const Transform a{static_cast<Orient>(i), {2, 5}};
      const Transform b{static_cast<Orient>(j), {-3, 1}};
      const Transform c = compose(a, b);
      EXPECT_EQ(c.apply(p), b.apply(a.apply(p))) << i << "," << j;
    }
  }
}

TEST(Transform, R90RotatesCcw) {
  const Transform t{Orient::kR90, {}};
  EXPECT_EQ(t.apply(Point{1, 0}), (Point{0, 1}));
  EXPECT_EQ(t.apply(Point{0, 1}), (Point{-1, 0}));
}

TEST(Transform, RectStaysNormalized) {
  const Transform t{Orient::kR180, {0, 0}};
  const Rect r = t.apply(makeRect(1, 2, 5, 7));
  EXPECT_EQ(r, makeRect(-5, -7, -1, -2));
  EXPECT_FALSE(r.empty());
}

TEST(Polygon, NormalizesToCcwAndDropsCollinear) {
  // Clockwise square with an extra collinear vertex.
  Polygon p({{0, 0}, {0, 10}, {5, 10}, {10, 10}, {10, 0}});
  ASSERT_EQ(p.size(), 4u);
  EXPECT_EQ(p.twiceArea(), 200);
}

TEST(Polygon, AreaLShape) {
  Polygon p({{0, 0}, {20, 0}, {20, 10}, {10, 10}, {10, 20}, {0, 20}});
  EXPECT_EQ(p.twiceArea(), 2 * (20 * 10 + 10 * 10));
  EXPECT_TRUE(p.isManhattan());
}

TEST(Polygon, ContainsBoundaryAndInterior) {
  Polygon p({{0, 0}, {10, 0}, {10, 10}, {0, 10}});
  EXPECT_TRUE(p.contains({5, 5}));
  EXPECT_TRUE(p.contains({0, 5}));    // boundary
  EXPECT_TRUE(p.contains({10, 10}));  // corner
  EXPECT_FALSE(p.contains({11, 5}));
  EXPECT_FALSE(p.contains({-1, -1}));
}

TEST(Polygon, ContainsNonManhattan) {
  Polygon tri({{0, 0}, {10, 0}, {0, 10}});
  EXPECT_TRUE(tri.contains({2, 2}));
  EXPECT_TRUE(tri.contains({5, 5}));  // hypotenuse
  EXPECT_FALSE(tri.contains({6, 6}));
  EXPECT_FALSE(tri.isManhattan());
}

TEST(Polygon, ToRegionRectangle) {
  Polygon p({{0, 0}, {10, 0}, {10, 10}, {0, 10}});
  const Region r = p.toRegion();
  EXPECT_EQ(r.area(), 100);
  ASSERT_EQ(r.rects().size(), 1u);
  EXPECT_EQ(r.rects()[0], makeRect(0, 0, 10, 10));
}

TEST(Polygon, ToRegionLShape) {
  Polygon p({{0, 0}, {20, 0}, {20, 10}, {10, 10}, {10, 20}, {0, 20}});
  const Region r = p.toRegion();
  EXPECT_EQ(r.area(), 300);
}

TEST(Polygon, ToRegionUShape) {
  // U shape: two towers on a base.
  Polygon p({{0, 0}, {30, 0}, {30, 20}, {20, 20}, {20, 10}, {10, 10},
             {10, 20}, {0, 20}});
  const Region r = p.toRegion();
  EXPECT_EQ(r.area(), 30 * 10 + 2 * 10 * 10);
  EXPECT_TRUE(r.contains({5, 15}));
  EXPECT_TRUE(r.contains({25, 15}));
  EXPECT_FALSE(r.contains({15, 15}));  // the notch
}

TEST(Polygon, TransformPreservesArea) {
  Polygon p({{0, 0}, {20, 0}, {20, 10}, {10, 10}, {10, 20}, {0, 20}});
  for (int i = 0; i < 8; ++i) {
    const Polygon q = p.transformed({static_cast<Orient>(i), {100, -50}});
    EXPECT_EQ(q.twiceArea(), p.twiceArea()) << i;
  }
}

TEST(SegmentDistance, ParallelAndCrossing) {
  EXPECT_DOUBLE_EQ(segmentDistance({0, 0}, {10, 0}, {0, 5}, {10, 5}), 5.0);
  EXPECT_DOUBLE_EQ(segmentDistance({0, 0}, {10, 10}, {0, 10}, {10, 0}), 0.0);
  EXPECT_DOUBLE_EQ(segmentDistance({0, 0}, {10, 0}, {13, 4}, {20, 4}), 5.0);
}

TEST(PolygonDistance, SeparatedSquares) {
  Polygon a({{0, 0}, {10, 0}, {10, 10}, {0, 10}});
  Polygon b({{13, 14}, {23, 14}, {23, 24}, {13, 24}});
  EXPECT_DOUBLE_EQ(polygonDistance(a, b), 5.0);
  Polygon c({{5, 5}, {15, 5}, {15, 15}, {5, 15}});
  EXPECT_DOUBLE_EQ(polygonDistance(a, c), 0.0);
}

}  // namespace
}  // namespace dic::geom
