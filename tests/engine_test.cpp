// Tests for the shared hierarchy-view/spatial-query engine: GridIndex key
// packing (negative coordinates, cell straddling, dedup), HierarchyView
// candidate pairs against a brute-force oracle, the stage runner, the
// parallel executor's determinism contract, and flat-vs-hierarchical
// violation-set equivalence now that both run through the engine.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <random>
#include <thread>

#include "drc/checker.hpp"
#include "engine/executor.hpp"
#include "engine/hierarchy_view.hpp"
#include "engine/pipeline.hpp"
#include "geom/spatial.hpp"
#include "workload/generator.hpp"
#include "workload/inject.hpp"

namespace dic {
namespace {

using geom::makeRect;
using geom::Rect;

// --- GridIndex key packing ---------------------------------------------------

TEST(GridIndex, NegativeCoordinatesDoNotAlias) {
  // Rows at negative gy used to collide with large positive rows. Every
  // inserted rect must be found by a query over its own area, and a
  // far-away query must not return it.
  geom::GridIndex idx(100);
  idx.insert(0, makeRect(-250, -250, -150, -150));
  idx.insert(1, makeRect(150, 150, 250, 250));
  idx.insert(2, makeRect(-250, 150, -150, 250));
  idx.insert(3, makeRect(150, -250, 250, -150));
  for (std::size_t i = 0; i < 4; ++i) {
    const Rect probe = i == 0   ? makeRect(-260, -260, -140, -140)
                       : i == 1 ? makeRect(140, 140, 260, 260)
                       : i == 2 ? makeRect(-260, 140, -140, 260)
                                : makeRect(140, -260, 260, -140);
    const auto got = idx.query(probe);
    EXPECT_EQ(got, std::vector<std::size_t>{i}) << "quadrant " << i;
  }
}

TEST(GridIndex, CellBoundaryStraddlingDeduplicated) {
  // A rect spanning many grid cells is inserted into each of them but
  // must be reported exactly once.
  geom::GridIndex idx(64);
  idx.insert(7, makeRect(-200, -200, 200, 200));
  const auto got = idx.query(makeRect(-300, -300, 300, 300));
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], 7u);
}

TEST(GridIndex, RandomOracleWithNegativeCoords) {
  std::mt19937 rng(7);
  std::uniform_int_distribution<geom::Coord> c(-50000, 50000), s(1, 4000);
  std::vector<Rect> rects;
  geom::GridIndex idx(1024);
  for (int i = 0; i < 250; ++i) {
    const geom::Coord x = c(rng), y = c(rng);
    rects.push_back(makeRect(x, y, x + s(rng), y + s(rng)));
    idx.insert(i, rects.back());
  }
  for (std::size_t i = 0; i < rects.size(); ++i) {
    const auto cand = idx.query(rects[i]);
    // Sorted + deduplicated.
    EXPECT_TRUE(std::is_sorted(cand.begin(), cand.end()));
    EXPECT_EQ(std::adjacent_find(cand.begin(), cand.end()), cand.end());
    // No false negatives.
    for (std::size_t j = 0; j < rects.size(); ++j) {
      if (i == j || !geom::closedTouch(rects[i], rects[j])) continue;
      EXPECT_NE(std::find(cand.begin(), cand.end(), j), cand.end())
          << i << " vs " << j;
    }
  }
}

// --- HierarchyView -----------------------------------------------------------

/// A three-level library: top instantiates mid twice (one rotated), mid
/// instantiates leaf twice. Elements at every level.
struct SmallHierarchy {
  layout::Library lib;
  layout::CellId leaf, mid, top;

  SmallHierarchy() {
    layout::Cell l;
    l.name = "leaf";
    l.elements.push_back(layout::makeBox(0, makeRect(0, 0, 100, 100)));
    l.elements.push_back(layout::makeBox(1, makeRect(200, 0, 300, 100)));
    leaf = lib.addCell(std::move(l));

    layout::Cell m;
    m.name = "mid";
    m.elements.push_back(layout::makeBox(0, makeRect(0, 200, 400, 260)));
    m.instances.push_back({leaf, {geom::Orient::kR0, {0, 0}}, "a"});
    m.instances.push_back({leaf, {geom::Orient::kR0, {500, 0}}, "b"});
    mid = lib.addCell(std::move(m));

    layout::Cell t;
    t.name = "top";
    t.elements.push_back(layout::makeBox(1, makeRect(-300, -300, -100, -100)));
    t.instances.push_back({mid, {geom::Orient::kR0, {0, 0}}, "m0"});
    t.instances.push_back({mid, {geom::Orient::kR90, {2000, 0}}, "m1"});
    top = lib.addCell(std::move(t));
  }
};

TEST(HierarchyView, PlacementEnumeration) {
  SmallHierarchy h;
  engine::HierarchyView view(h.lib, h.top);
  EXPECT_EQ(view.placementsOf(h.top).size(), 1u);
  EXPECT_EQ(view.placementsOf(h.mid).size(), 2u);
  EXPECT_EQ(view.placementsOf(h.leaf).size(), 4u);
  std::vector<std::string> paths;
  for (const auto& p : view.placementsOf(h.leaf)) paths.push_back(p.path);
  std::sort(paths.begin(), paths.end());
  EXPECT_EQ(paths, (std::vector<std::string>{"m0.a", "m0.b", "m1.a", "m1.b"}));
}

TEST(HierarchyView, FlatViewsAndLayerQueries) {
  SmallHierarchy h;
  engine::HierarchyView view(h.lib, h.top);
  const auto& flat = view.flat(true);
  // 1 top + 2 mids x (1 + 2 leaves x 2) = 11 elements.
  EXPECT_EQ(flat.elements.size(), 11u);
  // Layer-restricted candidate queries return only that layer.
  const auto onLayer0 =
      view.flatCandidates(true, 0, makeRect(-5000, -5000, 5000, 5000));
  for (std::size_t i : onLayer0)
    EXPECT_EQ(flat.elements[i].element.layer, 0);
}

TEST(HierarchyView, FlatPairsMatchBruteForceOracle) {
  SmallHierarchy h;
  engine::HierarchyView view(h.lib, h.top);
  const auto& flat = view.flat(true);
  for (const geom::Coord dist : {geom::Coord{1}, geom::Coord{150},
                                 geom::Coord{1000}, geom::Coord{5000}}) {
    const auto pairs = view.flatPairs(true, dist);
    std::vector<std::pair<std::size_t, std::size_t>> oracle;
    for (std::size_t i = 0; i < flat.elements.size(); ++i)
      for (std::size_t j = i + 1; j < flat.elements.size(); ++j)
        if (geom::rectDistance(flat.bboxes[i], flat.bboxes[j],
                               geom::Metric::kOrthogonal) <=
            static_cast<double>(dist))
          oracle.push_back({i, j});
    EXPECT_EQ(pairs, oracle) << "dist " << dist;
  }
}

TEST(HierarchyView, LocalPairsMatchBruteForceOracle) {
  std::mt19937 rng(21);
  std::uniform_int_distribution<geom::Coord> c(-8000, 8000), s(10, 900);
  layout::Library lib;
  layout::Cell cell;
  cell.name = "rand";
  std::vector<Rect> boxes;
  for (int i = 0; i < 120; ++i) {
    const geom::Coord x = c(rng), y = c(rng);
    boxes.push_back(makeRect(x, y, x + s(rng), y + s(rng)));
    cell.elements.push_back(layout::makeBox(0, boxes.back()));
  }
  const auto id = lib.addCell(std::move(cell));
  engine::HierarchyView view(lib, id);
  const geom::Coord dist = 500;
  const auto pairs = view.localPairs(id, dist);
  std::vector<std::pair<std::size_t, std::size_t>> oracle;
  for (std::size_t i = 0; i < boxes.size(); ++i)
    for (std::size_t j = i + 1; j < boxes.size(); ++j)
      if (geom::rectDistance(boxes[i], boxes[j], geom::Metric::kOrthogonal) <=
          static_cast<double>(dist))
        oracle.push_back({i, j});
  EXPECT_EQ(pairs, oracle);
}

TEST(SpatialSet, CandidatesNeverMiss) {
  std::mt19937 rng(5);
  std::uniform_int_distribution<geom::Coord> c(-30000, 30000), s(1, 2500);
  std::vector<Rect> rects;
  for (int i = 0; i < 200; ++i) {
    const geom::Coord x = c(rng), y = c(rng);
    rects.push_back(makeRect(x, y, x + s(rng), y + s(rng)));
  }
  const engine::SpatialSet set(rects);
  for (std::size_t i = 0; i < rects.size(); ++i) {
    const auto cand = set.candidates(rects[i], 100);
    for (std::size_t j = 0; j < rects.size(); ++j) {
      if (i == j) continue;
      if (geom::rectDistance(rects[i], rects[j], geom::Metric::kOrthogonal) >
          100.0)
        continue;
      EXPECT_NE(std::find(cand.begin(), cand.end(), j), cand.end());
    }
  }
}

// --- Executor + Pipeline -----------------------------------------------------

TEST(Executor, CoversEveryIndexExactlyOnce) {
  for (const int threads : {1, 4}) {
    engine::Executor exec(threads);
    constexpr std::size_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    exec.parallelFor(n, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
  }
}

TEST(Executor, PropagatesWorkerExceptions) {
  for (const int threads : {1, 4}) {
    engine::Executor exec(threads);
    EXPECT_THROW(exec.parallelFor(200,
                                  [](std::size_t i) {
                                    if (i == 37)
                                      throw std::runtime_error("boom");
                                  }),
                 std::runtime_error);
  }
}

TEST(Executor, HardwareThreadsCachedAndUsedForNonPositiveRequest) {
  const int hw = engine::Executor::hardwareThreads();
  EXPECT_GE(hw, 1);
  // Cached once per process: repeated calls agree.
  EXPECT_EQ(hw, engine::Executor::hardwareThreads());
  engine::Executor def(0), neg(-3);
  EXPECT_EQ(def.threads(), hw);
  EXPECT_EQ(neg.threads(), hw);
}

TEST(Executor, NestedParallelForSharesOnePool) {
  // A stage-like outer fan-out whose items each fan out again. The inner
  // loops share the same pool via work-stealing; every (outer, inner)
  // pair must run exactly once.
  engine::Executor exec(4);
  constexpr std::size_t outer = 8, inner = 64;
  std::vector<std::atomic<int>> hits(outer * inner);
  exec.parallelFor(outer, [&](std::size_t o) {
    exec.parallelFor(
        inner, [&](std::size_t i) { hits[o * inner + i].fetch_add(1); });
  });
  for (std::size_t k = 0; k < outer * inner; ++k)
    EXPECT_EQ(hits[k].load(), 1) << "slot " << k;
}

TEST(Executor, SubmitRunsTasksAndHelpUntilDrains) {
  for (const int threads : {1, 4}) {
    engine::Executor exec(threads);
    constexpr int n = 100;
    std::atomic<int> doneCount{0};
    for (int i = 0; i < n; ++i)
      exec.submit([&] { doneCount.fetch_add(1); });
    exec.helpUntil([&] { return doneCount.load() == n; });
    EXPECT_EQ(doneCount.load(), n);
  }
}

TEST(Executor, ScopedHelpStealsOnlyMatchingTasks) {
  // One pool worker, parked on a latch so the deque piles up. The main
  // thread then helps with scope A: it must run the A-tagged tasks (its
  // "own pipeline run") and leave the B-tagged one for the worker —
  // that's what keeps a blocked coordinator's wall clock free of sibling
  // runs' work.
  engine::Executor exec(2);
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<bool> parked{false};
  exec.submit([&] {
    parked.store(true);
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  });
  while (!parked.load()) std::this_thread::yield();

  const engine::Executor::ScopeId scopeA = engine::Executor::newScope();
  const engine::Executor::ScopeId scopeB = engine::Executor::newScope();
  std::atomic<int> aDone{0};
  std::atomic<bool> bDone{false};
  exec.submit([&] { bDone.store(true); }, scopeB);
  for (int i = 0; i < 3; ++i)
    exec.submit(
        [&] {
          // A nested submit inherits the executing task's scope, so the
          // scoped helper may pick it up too (a stage's inner fan-out).
          exec.submit([&] { aDone.fetch_add(1); });
          aDone.fetch_add(1);
        },
        scopeA);

  exec.helpUntil([&] { return aDone.load() == 6; }, scopeA);
  EXPECT_EQ(aDone.load(), 6);
  EXPECT_FALSE(bDone.load());  // foreign scope: not stolen by the helper

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  // The worker (which ignores scopes) drains the B task.
  exec.helpUntil([&] { return bDone.load(); });
  EXPECT_TRUE(bDone.load());
}

TEST(Pipeline, DependenciesGateExecutionAndMergeIsDeclaredOrder) {
  for (const int threads : {1, 4}) {
    engine::Executor exec(threads);
    engine::Pipeline pipe;
    std::mutex mu;
    std::vector<std::string> started;
    auto stage = [&](const std::string& name) {
      return [&, name](engine::Executor&) {
        {
          std::lock_guard<std::mutex> lock(mu);
          started.push_back(name);
        }
        report::Report r;
        report::Violation v;
        v.message = name;
        r.add(std::move(v));
        return r;
      };
    };
    pipe.add({"a", {}, stage("a")});
    pipe.add({"b", {}, stage("b")});
    pipe.add({"gate", {}, stage("gate")});
    pipe.add({"after", {"gate"}, stage("after")});
    const report::Report rep = pipe.run(exec);
    // "after" cannot start before "gate" completed.
    const auto posGate = std::find(started.begin(), started.end(), "gate");
    const auto posAfter = std::find(started.begin(), started.end(), "after");
    EXPECT_LT(posGate, posAfter);
    // Merged report follows declaration order whatever the schedule was.
    ASSERT_EQ(rep.count(), 4u);
    EXPECT_EQ(rep.violations()[0].message, "a");
    EXPECT_EQ(rep.violations()[1].message, "b");
    EXPECT_EQ(rep.violations()[2].message, "gate");
    EXPECT_EQ(rep.violations()[3].message, "after");
    // Every stage got a timing slot.
    EXPECT_EQ(pipe.results().size(), 4u);
    EXPECT_GE(pipe.seconds("after"), 0.0);
  }
}

TEST(Pipeline, UnknownDependencyThrows) {
  engine::Executor exec(1);
  engine::Pipeline pipe;
  pipe.add({"x", {"nope"}, [](engine::Executor&) { return report::Report{}; }});
  EXPECT_THROW(pipe.run(exec), std::invalid_argument);
}

TEST(Pipeline, DependencyCycleThrows) {
  engine::Executor exec(1);
  engine::Pipeline pipe;
  pipe.add({"x", {"y"}, [](engine::Executor&) { return report::Report{}; }});
  pipe.add({"y", {"x"}, [](engine::Executor&) { return report::Report{}; }});
  EXPECT_THROW(pipe.run(exec), std::invalid_argument);
}

TEST(Pipeline, CycleIsDetectedUpFrontAndNoStageRuns) {
  // The dispatcher rejects cycles before dispatching anything, even when
  // the cycle sits downstream of runnable stages and even with a pool.
  for (const int threads : {1, 4}) {
    engine::Executor exec(threads);
    engine::Pipeline pipe;
    std::atomic<int> ran{0};
    auto counting = [&](engine::Executor&) {
      ran.fetch_add(1);
      return report::Report{};
    };
    pipe.add({"root", {}, counting});
    pipe.add({"a", {"root", "c"}, counting});
    pipe.add({"b", {"a"}, counting});
    pipe.add({"c", {"b"}, counting});  // a -> b -> c -> a
    EXPECT_THROW(pipe.run(exec), std::invalid_argument);
    EXPECT_EQ(ran.load(), 0) << "threads=" << threads;
  }
  // Self-dependency is the smallest cycle.
  engine::Executor exec(1);
  engine::Pipeline pipe;
  pipe.add({"s", {"s"}, [](engine::Executor&) { return report::Report{}; }});
  EXPECT_THROW(pipe.run(exec), std::invalid_argument);
}

TEST(Pipeline, ResultsStayInDeclarationOrderWhateverTheCompletionOrder) {
  // Stages deliberately finish in an order scrambled against declaration
  // (the last-declared stage has no deps and the cheapest cost hints push
  // it to complete first in parallel runs); results() must still line up
  // with declaration and carry start timestamps for every stage.
  for (const int threads : {1, 4}) {
    engine::Executor exec(threads);
    engine::Pipeline pipe;
    auto noop = [](engine::Executor&) { return report::Report{}; };
    pipe.add({"first", {}, noop, /*cost=*/1.0});
    pipe.add({"second", {"first"}, noop, /*cost=*/5.0});
    pipe.add({"third", {}, noop, /*cost=*/9.0});
    pipe.add({"fourth", {}, noop, /*cost=*/0.5});
    pipe.run(exec);
    const std::vector<engine::StageResult>& rs = pipe.results();
    ASSERT_EQ(rs.size(), 4u);
    EXPECT_EQ(rs[0].name, "first");
    EXPECT_EQ(rs[1].name, "second");
    EXPECT_EQ(rs[2].name, "third");
    EXPECT_EQ(rs[3].name, "fourth");
    for (const engine::StageResult& r : rs) {
      EXPECT_GE(r.start, 0.0) << r.name;
      EXPECT_GE(r.seconds, 0.0) << r.name;
    }
    // A dependent can never have started before its dependency started.
    EXPECT_GE(rs[1].start, rs[0].start);
  }
}

TEST(Pipeline, DependentOfFastStageDoesNotWaitForSlowIndependentStage) {
  // Diamond DAG: source fans out to a slow and a fast branch which join
  // in a sink. Under the old wave scheduler "dep" (the fast branch's
  // second hop) could not start until "slow" drained the wave; the
  // ready-queue dispatcher must start it while "slow" is still running.
  // Proved by start *ordering*, not wall-clock: "slow" blocks until it
  // observes "dep" having started (bounded by a generous timeout so a
  // regression fails rather than hangs).
  engine::Executor exec(4);
  engine::Pipeline pipe;
  std::mutex mu;
  std::condition_variable cv;
  bool depStarted = false;
  bool slowSawDepStart = false;
  auto noop = [](engine::Executor&) { return report::Report{}; };
  pipe.add({"source", {}, noop});
  pipe.add({"slow",
            {"source"},
            [&](engine::Executor&) {
              std::unique_lock<std::mutex> lock(mu);
              slowSawDepStart = cv.wait_for(
                  lock, std::chrono::seconds(10), [&] { return depStarted; });
              return report::Report{};
            }});
  pipe.add({"fast", {"source"}, noop});
  pipe.add({"dep",
            {"fast"},
            [&](engine::Executor&) {
              {
                std::lock_guard<std::mutex> lock(mu);
                depStarted = true;
              }
              cv.notify_all();
              return report::Report{};
            }});
  pipe.add({"sink", {"slow", "dep"}, noop});
  pipe.run(exec);
  EXPECT_TRUE(slowSawDepStart)
      << "'dep' did not start while the slow independent stage was running "
         "-- the dispatcher is barrier-scheduling again";
  // And the recorded timestamps tell the same story.
  const std::vector<engine::StageResult>& rs = pipe.results();
  const auto find = [&](const std::string& name) {
    for (const engine::StageResult& r : rs)
      if (r.name == name) return r;
    return engine::StageResult{};
  };
  const engine::StageResult slow = find("slow"), dep = find("dep");
  EXPECT_LT(dep.start, slow.start + slow.seconds)
      << "'dep' started only after 'slow' finished";
}

TEST(Pipeline, IsolatedFailureSkipsOnlyDependentSubgraph) {
  // FailurePolicy::kIsolate — the decomposed-batch semantics: a throwing
  // stage records its error, its transitive dependents are skipped, and
  // every stage NOT downstream of the failure still runs. run() returns
  // normally with the survivors' merged report.
  for (const int threads : {1, 4}) {
    engine::Executor exec(threads);
    engine::Pipeline pipe;
    std::atomic<int> ran{0};
    auto counting = [&ran](const char* msg) {
      return [&ran, msg](engine::Executor&) {
        ran.fetch_add(1);
        report::Report r;
        report::Violation v;
        v.message = msg;
        r.add(std::move(v));
        return r;
      };
    };
    pipe.add({"bad", {}, [](engine::Executor&) -> report::Report {
                throw std::runtime_error("stage exploded");
              }});
    pipe.add({"child", {"bad"}, counting("child")});
    pipe.add({"grandchild", {"child"}, counting("grandchild")});
    pipe.add({"bystander", {}, counting("bystander")});
    pipe.add({"dependent", {"bystander"}, counting("dependent")});
    report::Report rep;
    ASSERT_NO_THROW(rep = pipe.run(exec, engine::FailurePolicy::kIsolate))
        << "threads=" << threads;
    EXPECT_EQ(ran.load(), 2) << "threads=" << threads;

    const std::vector<engine::StageResult>& rs = pipe.results();
    ASSERT_EQ(rs.size(), 5u);
    EXPECT_EQ(rs[0].error, "stage exploded");
    EXPECT_FALSE(rs[0].skipped);
    EXPECT_FALSE(rs[0].ok());
    EXPECT_TRUE(rs[1].skipped);          // direct dependent
    EXPECT_LT(rs[1].start, 0.0);         // never started
    EXPECT_TRUE(rs[2].skipped);          // transitive dependent
    EXPECT_TRUE(rs[3].ok());
    EXPECT_TRUE(rs[4].ok());  // dependent of a HEALTHY stage still runs

    // Survivors merge in declaration order; failed/skipped contribute
    // nothing.
    ASSERT_EQ(rep.count(), 2u);
    EXPECT_EQ(rep.violations()[0].message, "bystander");
    EXPECT_EQ(rep.violations()[1].message, "dependent");
  }
}

TEST(Pipeline, CrossRequestCheckStartsWhileSiblingExtractRuns) {
  // The decomposed-batch shape: two request subgraphs (view -> extract ->
  // check) share one dispatcher. Under request-at-a-time scheduling,
  // request B's check could never start before request A completed; with
  // first-class inner stages it starts the moment B's own chain allows.
  // Proved by ordering, not wall-clock: A's extract stage blocks until it
  // OBSERVES B's check starting (generous timeout so a regression fails
  // rather than hangs).
  engine::Executor exec(4);
  engine::Pipeline pipe;
  std::mutex mu;
  std::condition_variable cv;
  bool bCheckStarted = false;
  bool aExtractSawIt = false;
  auto noop = [](engine::Executor&) { return report::Report{}; };
  pipe.add({"a:view", {}, noop, /*cost=*/3.0});
  pipe.add({"a:extract",
            {"a:view"},
            [&](engine::Executor&) {
              std::unique_lock<std::mutex> lock(mu);
              aExtractSawIt = cv.wait_for(lock, std::chrono::seconds(10),
                                          [&] { return bCheckStarted; });
              return report::Report{};
            },
            /*cost=*/6.0});
  pipe.add({"a:check", {"a:extract"}, noop, /*cost=*/10.0});
  pipe.add({"b:view", {}, noop, /*cost=*/3.0});
  pipe.add({"b:extract", {"b:view"}, noop, /*cost=*/6.0});
  pipe.add({"b:check",
            {"b:extract"},
            [&](engine::Executor&) {
              {
                std::lock_guard<std::mutex> lock(mu);
                bCheckStarted = true;
              }
              cv.notify_all();
              return report::Report{};
            },
            /*cost=*/10.0});
  pipe.run(exec);
  EXPECT_TRUE(aExtractSawIt)
      << "request B's check stage never started while request A's extract "
         "stage was running -- the batch graph is scheduling "
         "request-at-a-time again";
  // The recorded timestamps tell the same story.
  const std::vector<engine::StageResult>& rs = pipe.results();
  const auto find = [&](const std::string& name) {
    for (const engine::StageResult& r : rs)
      if (r.name == name) return r;
    return engine::StageResult{};
  };
  const engine::StageResult aExtract = find("a:extract");
  const engine::StageResult bCheck = find("b:check");
  EXPECT_LT(bCheck.start, aExtract.start + aExtract.seconds);
}

// --- Whole-pipeline equivalences --------------------------------------------

/// Canonical text of a violation set, order-independent (sorted multiset).
std::vector<std::string> canonical(const report::Report& rep) {
  std::vector<std::string> out;
  out.reserve(rep.count());
  for (const report::Violation& v : rep.violations()) {
    out.push_back(report::toString(v.category) + "|" + v.rule + "|" +
                  geom::toString(v.where) + "|" + v.cell + "|" +
                  std::to_string(v.layerA) + "," + std::to_string(v.layerB) +
                  "|" + v.message);
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(EngineEquivalence, FlatAndHierarchicalProduceIdenticalViolationSets) {
  const tech::Technology t = tech::nmos();
  const workload::ChipParams scenarios[] = {
      {1, 1, 2, 2, false}, {1, 2, 2, 2, true}, {2, 2, 2, 2, true}};
  int scenario = 0;
  for (const auto& params : scenarios) {
    workload::GeneratedChip chip = workload::generateChip(t, params);
    workload::InjectionPlan plan;  // defaults: plant a bit of everything
    workload::inject(chip, t, plan, /*seed=*/1234 + scenario);

    drc::Options flat;
    flat.hierarchicalInteractions = false;
    drc::Options hier;
    hier.hierarchicalInteractions = true;

    drc::Checker cf(chip.lib, chip.top, t, flat);
    drc::Checker ch(chip.lib, chip.top, t, hier);
    const auto rf = cf.checkInteractions(cf.generateNetlist());
    const auto rh = ch.checkInteractions(ch.generateNetlist());
    EXPECT_EQ(canonical(rf), canonical(rh)) << "scenario " << scenario;
    ++scenario;
  }
}

TEST(EngineEquivalence, ThreadSweepIsByteIdenticalToSerial) {
  // The determinism contract over the work-stealing pool: threads ∈
  // {2, 8} (fewer and more workers than the five pipeline stages) must
  // reproduce the threads=1 reference byte for byte, in both interaction
  // modes.
  const tech::Technology t = tech::nmos();
  workload::GeneratedChip chip =
      workload::generateChip(t, {1, 2, 2, 3, true});
  workload::InjectionPlan plan;
  workload::inject(chip, t, plan, /*seed=*/99);

  for (const bool hierarchical : {true, false}) {
    drc::Options serial;
    serial.hierarchicalInteractions = hierarchical;
    serial.threads = 1;
    drc::Checker c1(chip.lib, chip.top, t, serial);
    const std::string t1 = c1.run().text();
    const drc::InteractionStats& s1 = c1.interactionStats();

    for (const int threads : {2, 8}) {
      drc::Options threaded = serial;
      threaded.threads = threads;
      drc::Checker cn(chip.lib, chip.top, t, threaded);
      const std::string tn = cn.run().text();
      EXPECT_EQ(t1, tn) << "hierarchical=" << hierarchical
                        << " threads=" << threads;

      const drc::InteractionStats& sn = cn.interactionStats();
      EXPECT_EQ(s1.candidatePairs, sn.candidatePairs);
      EXPECT_EQ(s1.distanceChecks, sn.distanceChecks);
      EXPECT_EQ(s1.connectionChecks, sn.connectionChecks);
      EXPECT_EQ(s1.perLayerPair, sn.perLayerPair);
    }
  }
}

}  // namespace
}  // namespace dic
