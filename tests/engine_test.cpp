// Tests for the shared hierarchy-view/spatial-query engine: GridIndex key
// packing (negative coordinates, cell straddling, dedup), HierarchyView
// candidate pairs against a brute-force oracle, the stage runner, the
// parallel executor's determinism contract, and flat-vs-hierarchical
// violation-set equivalence now that both run through the engine.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <random>

#include "drc/checker.hpp"
#include "engine/executor.hpp"
#include "engine/hierarchy_view.hpp"
#include "engine/pipeline.hpp"
#include "geom/spatial.hpp"
#include "workload/generator.hpp"
#include "workload/inject.hpp"

namespace dic {
namespace {

using geom::makeRect;
using geom::Rect;

// --- GridIndex key packing ---------------------------------------------------

TEST(GridIndex, NegativeCoordinatesDoNotAlias) {
  // Rows at negative gy used to collide with large positive rows. Every
  // inserted rect must be found by a query over its own area, and a
  // far-away query must not return it.
  geom::GridIndex idx(100);
  idx.insert(0, makeRect(-250, -250, -150, -150));
  idx.insert(1, makeRect(150, 150, 250, 250));
  idx.insert(2, makeRect(-250, 150, -150, 250));
  idx.insert(3, makeRect(150, -250, 250, -150));
  for (std::size_t i = 0; i < 4; ++i) {
    const Rect probe = i == 0   ? makeRect(-260, -260, -140, -140)
                       : i == 1 ? makeRect(140, 140, 260, 260)
                       : i == 2 ? makeRect(-260, 140, -140, 260)
                                : makeRect(140, -260, 260, -140);
    const auto got = idx.query(probe);
    EXPECT_EQ(got, std::vector<std::size_t>{i}) << "quadrant " << i;
  }
}

TEST(GridIndex, CellBoundaryStraddlingDeduplicated) {
  // A rect spanning many grid cells is inserted into each of them but
  // must be reported exactly once.
  geom::GridIndex idx(64);
  idx.insert(7, makeRect(-200, -200, 200, 200));
  const auto got = idx.query(makeRect(-300, -300, 300, 300));
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], 7u);
}

TEST(GridIndex, RandomOracleWithNegativeCoords) {
  std::mt19937 rng(7);
  std::uniform_int_distribution<geom::Coord> c(-50000, 50000), s(1, 4000);
  std::vector<Rect> rects;
  geom::GridIndex idx(1024);
  for (int i = 0; i < 250; ++i) {
    const geom::Coord x = c(rng), y = c(rng);
    rects.push_back(makeRect(x, y, x + s(rng), y + s(rng)));
    idx.insert(i, rects.back());
  }
  for (std::size_t i = 0; i < rects.size(); ++i) {
    const auto cand = idx.query(rects[i]);
    // Sorted + deduplicated.
    EXPECT_TRUE(std::is_sorted(cand.begin(), cand.end()));
    EXPECT_EQ(std::adjacent_find(cand.begin(), cand.end()), cand.end());
    // No false negatives.
    for (std::size_t j = 0; j < rects.size(); ++j) {
      if (i == j || !geom::closedTouch(rects[i], rects[j])) continue;
      EXPECT_NE(std::find(cand.begin(), cand.end(), j), cand.end())
          << i << " vs " << j;
    }
  }
}

// --- HierarchyView -----------------------------------------------------------

/// A three-level library: top instantiates mid twice (one rotated), mid
/// instantiates leaf twice. Elements at every level.
struct SmallHierarchy {
  layout::Library lib;
  layout::CellId leaf, mid, top;

  SmallHierarchy() {
    layout::Cell l;
    l.name = "leaf";
    l.elements.push_back(layout::makeBox(0, makeRect(0, 0, 100, 100)));
    l.elements.push_back(layout::makeBox(1, makeRect(200, 0, 300, 100)));
    leaf = lib.addCell(std::move(l));

    layout::Cell m;
    m.name = "mid";
    m.elements.push_back(layout::makeBox(0, makeRect(0, 200, 400, 260)));
    m.instances.push_back({leaf, {geom::Orient::kR0, {0, 0}}, "a"});
    m.instances.push_back({leaf, {geom::Orient::kR0, {500, 0}}, "b"});
    mid = lib.addCell(std::move(m));

    layout::Cell t;
    t.name = "top";
    t.elements.push_back(layout::makeBox(1, makeRect(-300, -300, -100, -100)));
    t.instances.push_back({mid, {geom::Orient::kR0, {0, 0}}, "m0"});
    t.instances.push_back({mid, {geom::Orient::kR90, {2000, 0}}, "m1"});
    top = lib.addCell(std::move(t));
  }
};

TEST(HierarchyView, PlacementEnumeration) {
  SmallHierarchy h;
  engine::HierarchyView view(h.lib, h.top);
  EXPECT_EQ(view.placementsOf(h.top).size(), 1u);
  EXPECT_EQ(view.placementsOf(h.mid).size(), 2u);
  EXPECT_EQ(view.placementsOf(h.leaf).size(), 4u);
  std::vector<std::string> paths;
  for (const auto& p : view.placementsOf(h.leaf)) paths.push_back(p.path);
  std::sort(paths.begin(), paths.end());
  EXPECT_EQ(paths, (std::vector<std::string>{"m0.a", "m0.b", "m1.a", "m1.b"}));
}

TEST(HierarchyView, FlatViewsAndLayerQueries) {
  SmallHierarchy h;
  engine::HierarchyView view(h.lib, h.top);
  const auto& flat = view.flat(true);
  // 1 top + 2 mids x (1 + 2 leaves x 2) = 11 elements.
  EXPECT_EQ(flat.elements.size(), 11u);
  // Layer-restricted candidate queries return only that layer.
  const auto onLayer0 =
      view.flatCandidates(true, 0, makeRect(-5000, -5000, 5000, 5000));
  for (std::size_t i : onLayer0)
    EXPECT_EQ(flat.elements[i].element.layer, 0);
}

TEST(HierarchyView, FlatPairsMatchBruteForceOracle) {
  SmallHierarchy h;
  engine::HierarchyView view(h.lib, h.top);
  const auto& flat = view.flat(true);
  for (const geom::Coord dist : {geom::Coord{1}, geom::Coord{150},
                                 geom::Coord{1000}, geom::Coord{5000}}) {
    const auto pairs = view.flatPairs(true, dist);
    std::vector<std::pair<std::size_t, std::size_t>> oracle;
    for (std::size_t i = 0; i < flat.elements.size(); ++i)
      for (std::size_t j = i + 1; j < flat.elements.size(); ++j)
        if (geom::rectDistance(flat.bboxes[i], flat.bboxes[j],
                               geom::Metric::kOrthogonal) <=
            static_cast<double>(dist))
          oracle.push_back({i, j});
    EXPECT_EQ(pairs, oracle) << "dist " << dist;
  }
}

TEST(HierarchyView, LocalPairsMatchBruteForceOracle) {
  std::mt19937 rng(21);
  std::uniform_int_distribution<geom::Coord> c(-8000, 8000), s(10, 900);
  layout::Library lib;
  layout::Cell cell;
  cell.name = "rand";
  std::vector<Rect> boxes;
  for (int i = 0; i < 120; ++i) {
    const geom::Coord x = c(rng), y = c(rng);
    boxes.push_back(makeRect(x, y, x + s(rng), y + s(rng)));
    cell.elements.push_back(layout::makeBox(0, boxes.back()));
  }
  const auto id = lib.addCell(std::move(cell));
  engine::HierarchyView view(lib, id);
  const geom::Coord dist = 500;
  const auto pairs = view.localPairs(id, dist);
  std::vector<std::pair<std::size_t, std::size_t>> oracle;
  for (std::size_t i = 0; i < boxes.size(); ++i)
    for (std::size_t j = i + 1; j < boxes.size(); ++j)
      if (geom::rectDistance(boxes[i], boxes[j], geom::Metric::kOrthogonal) <=
          static_cast<double>(dist))
        oracle.push_back({i, j});
  EXPECT_EQ(pairs, oracle);
}

TEST(SpatialSet, CandidatesNeverMiss) {
  std::mt19937 rng(5);
  std::uniform_int_distribution<geom::Coord> c(-30000, 30000), s(1, 2500);
  std::vector<Rect> rects;
  for (int i = 0; i < 200; ++i) {
    const geom::Coord x = c(rng), y = c(rng);
    rects.push_back(makeRect(x, y, x + s(rng), y + s(rng)));
  }
  const engine::SpatialSet set(rects);
  for (std::size_t i = 0; i < rects.size(); ++i) {
    const auto cand = set.candidates(rects[i], 100);
    for (std::size_t j = 0; j < rects.size(); ++j) {
      if (i == j) continue;
      if (geom::rectDistance(rects[i], rects[j], geom::Metric::kOrthogonal) >
          100.0)
        continue;
      EXPECT_NE(std::find(cand.begin(), cand.end(), j), cand.end());
    }
  }
}

// --- Executor + Pipeline -----------------------------------------------------

TEST(Executor, CoversEveryIndexExactlyOnce) {
  for (const int threads : {1, 4}) {
    const engine::Executor exec(threads);
    constexpr std::size_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    exec.parallelFor(n, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
  }
}

TEST(Executor, PropagatesWorkerExceptions) {
  for (const int threads : {1, 4}) {
    const engine::Executor exec(threads);
    EXPECT_THROW(exec.parallelFor(200,
                                  [](std::size_t i) {
                                    if (i == 37)
                                      throw std::runtime_error("boom");
                                  }),
                 std::runtime_error);
  }
}

TEST(Pipeline, DependenciesGateExecutionAndMergeIsDeclaredOrder) {
  for (const int threads : {1, 4}) {
    engine::Executor exec(threads);
    engine::Pipeline pipe;
    std::mutex mu;
    std::vector<std::string> started;
    auto stage = [&](const std::string& name) {
      return [&, name](engine::Executor&) {
        {
          std::lock_guard<std::mutex> lock(mu);
          started.push_back(name);
        }
        report::Report r;
        report::Violation v;
        v.message = name;
        r.add(std::move(v));
        return r;
      };
    };
    pipe.add({"a", {}, stage("a")});
    pipe.add({"b", {}, stage("b")});
    pipe.add({"gate", {}, stage("gate")});
    pipe.add({"after", {"gate"}, stage("after")});
    const report::Report rep = pipe.run(exec);
    // "after" cannot start before "gate" completed.
    const auto posGate = std::find(started.begin(), started.end(), "gate");
    const auto posAfter = std::find(started.begin(), started.end(), "after");
    EXPECT_LT(posGate, posAfter);
    // Merged report follows declaration order whatever the schedule was.
    ASSERT_EQ(rep.count(), 4u);
    EXPECT_EQ(rep.violations()[0].message, "a");
    EXPECT_EQ(rep.violations()[1].message, "b");
    EXPECT_EQ(rep.violations()[2].message, "gate");
    EXPECT_EQ(rep.violations()[3].message, "after");
    // Every stage got a timing slot.
    EXPECT_EQ(pipe.results().size(), 4u);
    EXPECT_GE(pipe.seconds("after"), 0.0);
  }
}

TEST(Pipeline, UnknownDependencyThrows) {
  engine::Executor exec(1);
  engine::Pipeline pipe;
  pipe.add({"x", {"nope"}, [](engine::Executor&) { return report::Report{}; }});
  EXPECT_THROW(pipe.run(exec), std::invalid_argument);
}

TEST(Pipeline, DependencyCycleThrows) {
  engine::Executor exec(1);
  engine::Pipeline pipe;
  pipe.add({"x", {"y"}, [](engine::Executor&) { return report::Report{}; }});
  pipe.add({"y", {"x"}, [](engine::Executor&) { return report::Report{}; }});
  EXPECT_THROW(pipe.run(exec), std::invalid_argument);
}

// --- Whole-pipeline equivalences --------------------------------------------

/// Canonical text of a violation set, order-independent (sorted multiset).
std::vector<std::string> canonical(const report::Report& rep) {
  std::vector<std::string> out;
  out.reserve(rep.count());
  for (const report::Violation& v : rep.violations()) {
    out.push_back(report::toString(v.category) + "|" + v.rule + "|" +
                  geom::toString(v.where) + "|" + v.cell + "|" +
                  std::to_string(v.layerA) + "," + std::to_string(v.layerB) +
                  "|" + v.message);
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(EngineEquivalence, FlatAndHierarchicalProduceIdenticalViolationSets) {
  const tech::Technology t = tech::nmos();
  const workload::ChipParams scenarios[] = {
      {1, 1, 2, 2, false}, {1, 2, 2, 2, true}, {2, 2, 2, 2, true}};
  int scenario = 0;
  for (const auto& params : scenarios) {
    workload::GeneratedChip chip = workload::generateChip(t, params);
    workload::InjectionPlan plan;  // defaults: plant a bit of everything
    workload::inject(chip, t, plan, /*seed=*/1234 + scenario);

    drc::Options flat;
    flat.hierarchicalInteractions = false;
    drc::Options hier;
    hier.hierarchicalInteractions = true;

    drc::Checker cf(chip.lib, chip.top, t, flat);
    drc::Checker ch(chip.lib, chip.top, t, hier);
    const auto rf = cf.checkInteractions(cf.generateNetlist());
    const auto rh = ch.checkInteractions(ch.generateNetlist());
    EXPECT_EQ(canonical(rf), canonical(rh)) << "scenario " << scenario;
    ++scenario;
  }
}

TEST(EngineEquivalence, ThreadedRunIsByteIdenticalToSerial) {
  const tech::Technology t = tech::nmos();
  workload::GeneratedChip chip =
      workload::generateChip(t, {1, 2, 2, 3, true});
  workload::InjectionPlan plan;
  workload::inject(chip, t, plan, /*seed=*/99);

  for (const bool hierarchical : {true, false}) {
    drc::Options serial;
    serial.hierarchicalInteractions = hierarchical;
    serial.threads = 1;
    drc::Options threaded = serial;
    threaded.threads = 4;

    drc::Checker c1(chip.lib, chip.top, t, serial);
    drc::Checker c4(chip.lib, chip.top, t, threaded);
    const std::string t1 = c1.run().text();
    const std::string t4 = c4.run().text();
    EXPECT_EQ(t1, t4) << "hierarchical=" << hierarchical;

    const drc::InteractionStats& s1 = c1.interactionStats();
    const drc::InteractionStats& s4 = c4.interactionStats();
    EXPECT_EQ(s1.candidatePairs, s4.candidatePairs);
    EXPECT_EQ(s1.distanceChecks, s4.distanceChecks);
    EXPECT_EQ(s1.connectionChecks, s4.connectionChecks);
    EXPECT_EQ(s1.perLayerPair, s4.perLayerPair);
  }
}

}  // namespace
}  // namespace dic
