// Hierarchy-under-transform tests: the checker must give identical
// answers for rotated, mirrored and deeply nested instances -- the
// paper's hierarchical checking is only sound if per-definition results
// are placement-invariant.
#include <gtest/gtest.h>

#include "drc/checker.hpp"
#include "erc/erc.hpp"
#include "netlist/netlist.hpp"
#include "workload/generator.hpp"

namespace dic {
namespace {

class TransformTest : public ::testing::Test {
 protected:
  tech::Technology t = tech::nmos();
  const geom::Coord L = t.lambda();

  layout::Library lib;
  workload::NmosCells cells = workload::installNmosCells(lib, t);

  layout::CellId topWithInverter(geom::Orient o, geom::Point at) {
    layout::Cell top;
    top.name = "top_" + std::to_string(static_cast<int>(o)) + "_" +
               std::to_string(at.x);
    top.instances.push_back({cells.inverter, {o, at}, "u"});
    return lib.addCell(std::move(top));
  }
};

TEST_F(TransformTest, InverterCleanInAllEightOrientations) {
  for (int i = 0; i < 8; ++i) {
    const auto root = topWithInverter(static_cast<geom::Orient>(i),
                                      {10000 , -7000});
    drc::Checker checker(lib, root, t, {});
    const auto rep = checker.run();
    EXPECT_TRUE(rep.empty()) << "orient " << i << "\n" << rep.text();
  }
}

TEST_F(TransformTest, NetlistInvariantUnderOrientation) {
  for (int i = 0; i < 8; ++i) {
    const auto root = topWithInverter(static_cast<geom::Orient>(i),
                                      {-3000, 5000});
    const netlist::Netlist nl = netlist::extract(lib, root, t);
    EXPECT_EQ(nl.devices.size(), 6u) << "orient " << i;
    const netlist::Net* vdd = nl.findNet("VDD");
    const netlist::Net* gnd = nl.findNet("GND");
    ASSERT_NE(vdd, nullptr) << "orient " << i;
    ASSERT_NE(gnd, nullptr) << "orient " << i;
    EXPECT_NE(vdd->id, gnd->id);
    // The depletion load's gate is tied to its source in every placement.
    for (const netlist::ExtractedDevice& d : nl.devices) {
      if (d.type != "DTRAN") continue;
      EXPECT_EQ(d.portNets.at("G"), d.portNets.at("S")) << "orient " << i;
    }
    const auto erc = erc::check(nl, t);
    EXPECT_TRUE(erc.empty()) << "orient " << i << "\n" << erc.text();
  }
}

TEST_F(TransformTest, MirroredPairAbutsCleanly) {
  // A common layout trick: mirror a cell about x so two instances share a
  // rail. Rails overlap exactly (same y span) -> legal connections only.
  layout::Cell top;
  top.name = "mirror_pair";
  top.instances.push_back(
      {cells.inverter, {geom::Orient::kR0, {0, 0}}, "a"});
  // kMY flips y; translate so the flipped GND rail [0,3L] lands on
  // [-3L,0]... instead place it so the two GND rails coincide: flipped
  // rail occupies [-3L,0]; shift up by 3L to overlap [0,3L].
  top.instances.push_back(
      {cells.inverter, {geom::Orient::kMY, {26 * L, 3 * L}}, "b"});
  const auto root = lib.addCell(std::move(top));
  drc::Checker checker(lib, root, t, {});
  const auto rep = checker.run();
  EXPECT_TRUE(rep.empty()) << rep.text();
  const netlist::Netlist nl = netlist::extract(lib, root, t);
  EXPECT_EQ(nl.devices.size(), 12u);
}

TEST_F(TransformTest, DeepNestingWithRotationsStaysClean) {
  // wrap the inverter three levels deep with accumulated transforms.
  layout::Cell l1;
  l1.name = "l1";
  l1.instances.push_back(
      {cells.inverter, {geom::Orient::kR90, {0, 0}}, "i"});
  const auto l1id = lib.addCell(std::move(l1));
  layout::Cell l2;
  l2.name = "l2";
  l2.instances.push_back({l1id, {geom::Orient::kR180, {40 * L, 0}}, "m"});
  const auto l2id = lib.addCell(std::move(l2));
  layout::Cell top;
  top.name = "deep";
  top.instances.push_back({l2id, {geom::Orient::kMY, {0, 50 * L}}, "t"});
  const auto root = lib.addCell(std::move(top));

  drc::Checker checker(lib, root, t, {});
  const auto rep = checker.run();
  EXPECT_TRUE(rep.empty()) << rep.text();
  // Netlist is still a well-formed inverter.
  const netlist::Netlist nl = netlist::extract(lib, root, t);
  ASSERT_EQ(nl.devices.size(), 6u);
  EXPECT_TRUE(erc::check(nl, t).empty());
}

TEST_F(TransformTest, FlatHierAgreeUnderRotation) {
  layout::Cell top;
  top.name = "rot_pair";
  top.instances.push_back(
      {cells.inverter, {geom::Orient::kR0, {0, 0}}, "a"});
  top.instances.push_back(
      {cells.inverter, {geom::Orient::kR180, {50 * L, 80 * L}}, "b"});
  // A deliberate diff-net metal spacing violation between them.
  const int nm = *t.layerByName("metal");
  top.elements.push_back(layout::makeBox(
      nm, geom::makeRect(0, 44 * L, 6 * L, 47 * L), "IN9"));
  top.elements.push_back(layout::makeBox(
      nm, geom::makeRect(0, 48 * L, 6 * L, 51 * L), "CLK"));
  const auto root = lib.addCell(std::move(top));

  drc::Options flat;
  flat.hierarchicalInteractions = false;
  drc::Checker cf(lib, root, t, flat);
  drc::Checker ch(lib, root, t, {});
  const auto rf = cf.run();
  const auto rh = ch.run();
  EXPECT_EQ(rf.count(report::Category::kSpacing),
            rh.count(report::Category::kSpacing))
      << "flat:\n" << rf.text() << "hier:\n" << rh.text();
  EXPECT_GE(rh.count(report::Category::kSpacing), 1u);
}

TEST_F(TransformTest, ViolationInstantiatedAtEveryPlacement) {
  // A cell with a width violation placed 3 times reports 3 violations at
  // 3 distinct transformed locations.
  layout::Cell bad;
  bad.name = "badcell";
  const int nm = *t.layerByName("metal");
  bad.elements.push_back(
      layout::makeBox(nm, geom::makeRect(0, 0, 8 * L, 2 * L)));
  const auto badId = lib.addCell(std::move(bad));
  layout::Cell top;
  top.name = "three";
  top.instances.push_back({badId, {geom::Orient::kR0, {0, 0}}, "p"});
  top.instances.push_back({badId, {geom::Orient::kR90, {50 * L, 0}}, "q"});
  top.instances.push_back(
      {badId, {geom::Orient::kMX, {0, 50 * L}}, "r"});
  const auto root = lib.addCell(std::move(top));
  drc::Checker checker(lib, root, t, {});
  const auto rep = checker.checkElements();
  ASSERT_EQ(rep.count(), 3u);
  // All three locations distinct.
  EXPECT_NE(rep.violations()[0].where, rep.violations()[1].where);
  EXPECT_NE(rep.violations()[1].where, rep.violations()[2].where);
}

TEST_F(TransformTest, PerDefinitionCheckingCountsOnce) {
  // With instantiation off, N placements still yield one report.
  layout::Cell bad;
  bad.name = "badcell2";
  const int nm = *t.layerByName("metal");
  bad.elements.push_back(
      layout::makeBox(nm, geom::makeRect(0, 0, 8 * L, 2 * L)));
  const auto badId = lib.addCell(std::move(bad));
  layout::Cell top;
  top.name = "many";
  for (int i = 0; i < 16; ++i)
    top.instances.push_back(
        {badId, {geom::Orient::kR0, {i * 20 * L, 0}}, "p" + std::to_string(i)});
  const auto root = lib.addCell(std::move(top));
  drc::Options once;
  once.instantiateViolations = false;
  drc::Checker checker(lib, root, t, once);
  EXPECT_EQ(checker.checkElements().count(), 1u);
}

}  // namespace
}  // namespace dic
