// Tests for skeletal connectivity (Fig. 11) including the paper's key
// invariant: legal-width elements with touching skeletons union to a
// legal-width region.
#include <gtest/gtest.h>

#include <random>

#include "geom/skeleton.hpp"
#include "geom/width.hpp"

namespace dic::geom {
namespace {

constexpr Coord kMinW = 20;

TEST(Skeleton, BoxSkeletonOfFatBox) {
  const Skeleton s = boxSkeleton(makeRect(0, 0, 100, 40), kMinW);
  ASSERT_EQ(s.parts.size(), 1u);
  // 2x space: [20, 180] x [20, 60].
  EXPECT_EQ(s.parts[0], makeRect(20, 20, 180, 60));
  EXPECT_FALSE(s.thin);
}

TEST(Skeleton, BoxSkeletonOfMinWidthBoxIsDegenerateLine) {
  const Skeleton s = boxSkeleton(makeRect(0, 0, 100, kMinW), kMinW);
  ASSERT_EQ(s.parts.size(), 1u);
  EXPECT_EQ(s.parts[0], makeRect(20, 20, 180, 20));  // zero height, closed
  EXPECT_TRUE(s.parts[0].closedValid());
  EXPECT_TRUE(s.thin);
}

TEST(Skeleton, WireSkeletonMinWidthIsCenterline) {
  const Skeleton s =
      wireSkeleton({{0, 0}, {100, 0}}, kMinW, kMinW);
  ASSERT_EQ(s.parts.size(), 1u);
  EXPECT_EQ(s.parts[0], makeRect(0, 0, 200, 0));
  EXPECT_TRUE(s.thin);
}

TEST(Skeleton, WireSkeletonFatWire) {
  const Skeleton s = wireSkeleton({{0, 0}, {100, 0}}, 30, kMinW);
  ASSERT_EQ(s.parts.size(), 1u);
  EXPECT_EQ(s.parts[0], makeRect(-10, -10, 210, 10));
}

TEST(Skeleton, LWireHasTwoParts) {
  const Skeleton s =
      wireSkeleton({{0, 0}, {100, 0}, {100, 100}}, kMinW, kMinW);
  EXPECT_EQ(s.parts.size(), 2u);
  EXPECT_TRUE(skeletonsConnected(s, s));
}

TEST(Skeleton, RegionSkeletonOfFatL) {
  const Region l = unite(Region(makeRect(0, 0, 100, 40)),
                         Region(makeRect(0, 0, 40, 100)));
  const Skeleton s = regionSkeleton(l, kMinW);
  EXPECT_FALSE(s.empty());
  EXPECT_FALSE(s.thin);
  // The two arm centerlines must be connected through the corner.
  const Skeleton armX = boxSkeleton(makeRect(60, 0, 100, 40), kMinW);
  const Skeleton armY = boxSkeleton(makeRect(0, 60, 40, 100), kMinW);
  EXPECT_TRUE(skeletonsConnected(s, armX));
  EXPECT_TRUE(skeletonsConnected(s, armY));
}

// --- Fig. 11: connected vs not-connected examples -------------------------

TEST(Fig11, OverlappingBoxesConnected) {
  const Skeleton a = boxSkeleton(makeRect(0, 0, 100, 20), kMinW);
  const Skeleton b = boxSkeleton(makeRect(80, 0, 180, 20), kMinW);
  EXPECT_TRUE(skeletonsConnected(a, b));
}

TEST(Fig11, SkeletonTouchRequiresHalfWidthOverlap) {
  // Two min-width boxes merely abutting: skeletons do NOT touch (the
  // paper's right-hand "not connected" case).
  const Skeleton a = boxSkeleton(makeRect(0, 0, 100, 20), kMinW);
  const Skeleton b = boxSkeleton(makeRect(100, 0, 200, 20), kMinW);
  EXPECT_FALSE(skeletonsConnected(a, b));
  // Overlap by exactly the minimum width: skeletons just touch.
  const Skeleton c = boxSkeleton(makeRect(80, 0, 180, 20), kMinW);
  EXPECT_TRUE(skeletonsConnected(a, c));
  // One unit less overlap: not connected.
  const Skeleton d = boxSkeleton(makeRect(81, 0, 181, 20), kMinW);
  EXPECT_FALSE(skeletonsConnected(a, d));
}

TEST(Fig11, EnclosedElementConnected) {
  const Skeleton big = boxSkeleton(makeRect(0, 0, 200, 200), kMinW);
  const Skeleton small = boxSkeleton(makeRect(50, 50, 90, 90), kMinW);
  EXPECT_TRUE(skeletonsConnected(big, small));
}

TEST(Fig11, CrossingWiresConnected) {
  const Skeleton h = wireSkeleton({{0, 50}, {200, 50}}, kMinW, kMinW);
  const Skeleton v = wireSkeleton({{100, 0}, {100, 200}}, kMinW, kMinW);
  EXPECT_TRUE(skeletonsConnected(h, v));
}

TEST(Fig11, ParallelWiresNotConnected) {
  const Skeleton a = wireSkeleton({{0, 0}, {200, 0}}, kMinW, kMinW);
  const Skeleton b = wireSkeleton({{0, 40}, {200, 40}}, kMinW, kMinW);
  EXPECT_FALSE(skeletonsConnected(a, b));
  EXPECT_DOUBLE_EQ(skeletonDistance(a, b), 40.0);
}

TEST(Fig11, OddMinWidthIsExactIn2xSpace) {
  // minWidth 15: the half-width 7.5 is exactly representable in 2x space.
  const Skeleton a = boxSkeleton(makeRect(0, 0, 100, 15), 15);
  ASSERT_EQ(a.parts.size(), 1u);
  EXPECT_EQ(a.parts[0], makeRect(15, 15, 185, 15));
}

// --- The key invariant, property-tested ------------------------------------

class SkeletonInvariant : public ::testing::TestWithParam<unsigned> {};

TEST_P(SkeletonInvariant, ConnectedLegalElementsUnionToLegalWidth) {
  // Paper: "if two elements are each of legal width and are skeletally
  // connected, then the union of the elements is of legal width."
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<Coord> pos(-60, 60), len(kMinW, 80);
  int connectedPairs = 0;
  for (int iter = 0; iter < 200; ++iter) {
    const Rect ra = makeRect(pos(rng), pos(rng), 0, 0);
    const Rect a = {ra.lo, {ra.lo.x + len(rng), ra.lo.y + len(rng)}};
    const Rect rb = makeRect(pos(rng), pos(rng), 0, 0);
    const Rect b = {rb.lo, {rb.lo.x + len(rng), rb.lo.y + len(rng)}};
    const Skeleton sa = boxSkeleton(a, kMinW);
    const Skeleton sb = boxSkeleton(b, kMinW);
    if (!skeletonsConnected(sa, sb)) continue;
    ++connectedPairs;
    const Region u = unite(Region(a), Region(b));
    EXPECT_TRUE(checkWidthEdges(u, kMinW).empty())
        << "a=" << toString(a) << " b=" << toString(b);
  }
  // The sweep must actually exercise connected cases.
  EXPECT_GT(connectedPairs, 5);
}

TEST_P(SkeletonInvariant, DisconnectedSkeletonsNeverOverlapRegions) {
  // Contrapositive sanity: if the element regions overlap by at least half
  // the minimum width in both axes, skeletons must touch.
  std::mt19937 rng(GetParam() * 37 + 11);
  std::uniform_int_distribution<Coord> pos(-60, 60), len(kMinW, 80);
  for (int iter = 0; iter < 200; ++iter) {
    const Coord x = pos(rng), y = pos(rng);
    const Rect a = makeRect(x, y, x + len(rng), y + len(rng));
    const Coord x2 = pos(rng), y2 = pos(rng);
    const Rect b = makeRect(x2, y2, x2 + len(rng), y2 + len(rng));
    const Rect inter = intersect(a, b);
    if (inter.empty() || inter.width() < kMinW || inter.height() < kMinW)
      continue;
    EXPECT_TRUE(
        skeletonsConnected(boxSkeleton(a, kMinW), boxSkeleton(b, kMinW)))
        << toString(a) << " vs " << toString(b);
  }
}

TEST_P(SkeletonInvariant, RegionSkeletonMatchesBoxSkeletonOnRects) {
  std::mt19937 rng(GetParam() * 101 + 7);
  std::uniform_int_distribution<Coord> pos(-50, 50), len(kMinW + 2, 90);
  for (int iter = 0; iter < 50; ++iter) {
    const Coord x = pos(rng), y = pos(rng);
    const Rect r = makeRect(x, y, x + len(rng), y + len(rng));
    const Skeleton viaBox = boxSkeleton(r, kMinW);
    const Skeleton viaRegion = regionSkeleton(Region(r), kMinW);
    ASSERT_EQ(viaRegion.parts.size(), 1u);
    EXPECT_EQ(viaRegion.parts[0], viaBox.parts[0]) << toString(r);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SkeletonInvariant, ::testing::Range(1u, 11u));

}  // namespace
}  // namespace dic::geom
