// Randomized differential tests of incremental edit-then-check: after
// every random edit the incrementally served CheckResult must be
// byte-for-byte the result of a cold full rebuild on a mirrored library
// (report text AND canonical netlist), across thread counts and server
// shard counts, plus directed degenerate-edit cases (zero-area rects,
// halo-boundary-exact spacing, empty cells, edit-then-drop).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "netlist_canonical.hpp"
#include "server/server.hpp"
#include "service/workspace.hpp"
#include "workload/generator.hpp"
#include "workload/inject.hpp"
#include "workload/traffic.hpp"

namespace dic {
namespace {

using netlist::testing::canonicalText;

/// splitmix64 — the repo's deterministic test/traffic generator idiom.
struct Rng {
  std::uint64_t s;
  explicit Rng(std::uint64_t seed) : s(seed) {}
  std::uint64_t next() {
    s += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = s;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  std::size_t uniform(std::size_t n) { return n ? next() % n : 0; }
  geom::Coord range(long long lo, long long hi) {
    return static_cast<geom::Coord>(
        lo + static_cast<long long>(uniform(static_cast<std::size_t>(hi - lo + 1))));
  }
};

workload::GeneratedChip makeChip(unsigned seed) {
  const tech::Technology t = tech::nmos();
  workload::GeneratedChip chip =
      workload::generateChip(t, {1, 1, 2, 2, true});
  workload::InjectionPlan plan;
  workload::inject(chip, t, plan, seed);
  return chip;
}

/// One random edit against the CURRENT library state (the caller applies
/// it to both the served workspace and the oracle mirror). Mix: moves
/// dominate (the incremental fast path), with resizes, adds/removes,
/// placement edits, and occasional device-cell edits (each a deliberate
/// full-rebuild fallback).
EditOp randomEdit(Rng& rng, const layout::Library& lib, layout::CellId top,
                  int& nameCounter) {
  std::vector<layout::CellId> withElems, withInsts, devWithElems;
  lib.forEachCellOnce(top, [&](layout::CellId id) {
    const layout::Cell& c = lib.cell(id);
    if (!c.isDevice() && !c.elements.empty()) withElems.push_back(id);
    if (!c.isDevice() && !c.instances.empty()) withInsts.push_back(id);
    if (c.isDevice() && !c.elements.empty()) devWithElems.push_back(id);
  });

  const auto pickElem = [&](const std::vector<layout::CellId>& pool)
      -> std::pair<layout::CellId, std::size_t> {
    const layout::CellId cell = pool[rng.uniform(pool.size())];
    return {cell, rng.uniform(lib.cell(cell).elements.size())};
  };
  const auto moveEdit = [&] {
    const auto [cell, idx] = pickElem(withElems);
    // Small nudges mostly (often connectivity-preserving), occasional
    // large jumps (usually netlist-changing).
    const geom::Coord scale = rng.uniform(4) == 0 ? 500 : 50;
    const geom::Transform t = geom::translate(
        {rng.range(-2, 2) * scale, rng.range(-2, 2) * scale});
    return EditOp::setElement(cell, idx,
                              lib.cell(cell).elements[idx].transformed(t));
  };

  const std::uint64_t roll = rng.uniform(100);
  if (roll < 45 || withElems.empty()) return moveEdit();
  if (roll < 65) {
    // Resize: replace with a box spanning a perturbed bbox (zero-width
    // degenerates allowed — clamped to closed-valid).
    const auto [cell, idx] = pickElem(withElems);
    const layout::Element& e = lib.cell(cell).elements[idx];
    geom::Rect r = e.bbox();
    r.hi.x += rng.range(-4, 6) * 50;
    r.hi.y += rng.range(-4, 6) * 50;
    if (r.hi.x < r.lo.x) r.hi.x = r.lo.x;
    if (r.hi.y < r.lo.y) r.hi.y = r.lo.y;
    return EditOp::setElement(cell, idx, layout::makeBox(e.layer, r, e.net));
  }
  if (roll < 75) {
    // Add a box near an existing element (structural: rebuild fallback).
    const auto [cell, idx] = pickElem(withElems);
    const layout::Element& e = lib.cell(cell).elements[idx];
    const geom::Rect b = e.bbox();
    const geom::Coord dx = rng.range(-6, 6) * 100;
    const geom::Coord dy = rng.range(-6, 6) * 100;
    EditOp op;
    op.kind = EditOp::Kind::kAddElement;
    op.cell = cell;
    op.element = layout::makeBox(
        e.layer, {{b.lo.x + dx, b.lo.y + dy}, {b.hi.x + dx, b.hi.y + dy}},
        e.net);
    return op;
  }
  if (roll < 83) {
    // Remove an element (keep at least one so later edits have targets).
    std::vector<layout::CellId> pool;
    for (layout::CellId id : withElems)
      if (lib.cell(id).elements.size() > 1) pool.push_back(id);
    if (pool.empty()) return moveEdit();
    const auto [cell, idx] = pickElem(pool);
    EditOp op;
    op.kind = EditOp::Kind::kRemoveElement;
    op.cell = cell;
    op.index = idx;
    return op;
  }
  if (roll < 89 && !withInsts.empty()) {
    // Duplicate an existing placement at an offset.
    const layout::CellId parent = withInsts[rng.uniform(withInsts.size())];
    const layout::Cell& c = lib.cell(parent);
    layout::Instance inst = c.instances[rng.uniform(c.instances.size())];
    inst.transform.t.x += rng.range(-3, 3) * 2000;
    inst.transform.t.y += rng.range(-3, 3) * 2000;
    inst.name = "x" + std::to_string(nameCounter++);
    EditOp op;
    op.kind = EditOp::Kind::kAddInstance;
    op.cell = parent;
    op.instance = std::move(inst);
    return op;
  }
  if (roll < 94) {
    // Remove a placement.
    std::vector<layout::CellId> pool;
    for (layout::CellId id : withInsts)
      if (lib.cell(id).instances.size() > 1) pool.push_back(id);
    if (pool.empty()) return moveEdit();
    const layout::CellId parent = pool[rng.uniform(pool.size())];
    EditOp op;
    op.kind = EditOp::Kind::kRemoveInstance;
    op.cell = parent;
    op.index = rng.uniform(lib.cell(parent).instances.size());
    return op;
  }
  if (!devWithElems.empty()) {
    // Device-cell element nudge: tryPatch must reject it and rebuild.
    const auto [cell, idx] = pickElem(devWithElems);
    const geom::Transform t =
        geom::translate({rng.range(-1, 1) * 50, rng.range(-1, 1) * 50});
    return EditOp::setElement(cell, idx,
                              lib.cell(cell).elements[idx].transformed(t));
  }
  return moveEdit();
}

/// Apply one EditOp to a plain library through the tracked API (the same
/// operations Workspace::applyEdits performs).
void applyToMirror(layout::Library& lib, const EditOp& e) {
  switch (e.kind) {
    case EditOp::Kind::kNone: break;
    case EditOp::Kind::kSetElement: lib.setElement(e.cell, e.index, e.element); break;
    case EditOp::Kind::kAddElement: lib.addElement(e.cell, e.element); break;
    case EditOp::Kind::kRemoveElement: lib.removeElement(e.cell, e.index); break;
    case EditOp::Kind::kAddInstance: lib.addInstance(e.cell, e.instance); break;
    case EditOp::Kind::kRemoveInstance: lib.removeInstance(e.cell, e.index); break;
  }
}

/// Run the full-rebuild oracle: mirror the edit, wipe every cache
/// (revision bump + edit-log clear, so nothing can be patched or
/// reused), and serve a cold request.
CheckResult oracleCheck(Workspace& oracle, layout::CellId top,
                        const EditOp& edit) {
  applyToMirror(oracle.library(), edit);
  oracle.library().invalidateCaches();
  return oracle.run(CheckRequest::drc(top));
}

void expectSameResult(const CheckResult& inc, const CheckResult& cold,
                      const std::string& what) {
  EXPECT_EQ(inc.ok(), cold.ok()) << what << ": " << inc.error;
  EXPECT_EQ(inc.report.text(), cold.report.text()) << what;
  EXPECT_EQ(inc.report.count(), cold.report.count()) << what;
  EXPECT_EQ(inc.netlist ? canonicalText(*inc.netlist) : "",
            cold.netlist ? canonicalText(*cold.netlist) : "")
      << what;
}

/// The oracle loop against a direct Workspace (no server): `threads`
/// sizes the served side's pool; the oracle always runs cold.
void runWorkspaceOracle(unsigned seed, int threads, int edits) {
  workload::GeneratedChip chip = makeChip(seed);
  const layout::CellId top = chip.top;
  const tech::Technology t = tech::nmos();
  Workspace served(chip.lib, t, {.threads = threads});
  Workspace oracle(chip.lib, t, {.threads = 1});
  Rng rng(seed * 1000003ULL + 17);
  int nameCounter = 0;
  // Warm-up: populate the incremental cache once.
  ASSERT_TRUE(served.run(CheckRequest::drc(top)).ok());
  for (int n = 0; n < edits; ++n) {
    const EditOp edit =
        randomEdit(rng, oracle.library(), top, nameCounter);
    CheckRequest req = CheckRequest::drc(top);
    req.edits.push_back(edit);
    const CheckResult inc = served.run(req);
    const CheckResult cold = oracleCheck(oracle, top, edit);
    expectSameResult(inc, cold,
                     "seed " + std::to_string(seed) + " edit " +
                         std::to_string(n));
    if (::testing::Test::HasFailure()) break;
  }
}

/// The oracle loop through a dic::server::Server: edits ride
/// CheckRequests submitted to the owning shard; each library keeps its
/// own cold-oracle mirror.
void runServerOracle(unsigned seed, int shards, int threadsPerShard,
                     int libs, int edits) {
  server::ServerOptions opts;
  opts.shards = shards;
  opts.threadsPerShard = threadsPerShard;
  server::Server srv(opts);
  const tech::Technology t = tech::nmos();
  std::vector<std::string> ids;
  std::vector<std::unique_ptr<Workspace>> oracles;
  std::vector<layout::CellId> tops;
  for (int l = 0; l < libs; ++l) {
    workload::GeneratedChip chip = makeChip(seed + 100 * l);
    ids.push_back(workload::libraryName(l));
    tops.push_back(chip.top);
    ASSERT_TRUE(srv.addLibrary(ids.back(), chip.lib, t));
    oracles.push_back(std::make_unique<Workspace>(std::move(chip.lib), t,
                                                  WorkspaceOptions{1}));
    ASSERT_TRUE(
        srv.submit(ids.back(), CheckRequest::drc(tops.back())).get().ok());
  }
  Rng rng(seed * 7919ULL + 3);
  int nameCounter = 0;
  for (int n = 0; n < edits; ++n) {
    const std::size_t l = rng.uniform(oracles.size());
    const EditOp edit =
        randomEdit(rng, oracles[l]->library(), tops[l], nameCounter);
    CheckRequest req = CheckRequest::drc(tops[l]);
    req.edits.push_back(edit);
    const CheckResult inc = srv.submit(ids[l], req).get();
    const CheckResult cold = oracleCheck(*oracles[l], tops[l], edit);
    expectSameResult(inc, cold,
                     "seed " + std::to_string(seed) + " lib " + ids[l] +
                         " edit " + std::to_string(n));
    if (::testing::Test::HasFailure()) break;
  }
}

// ---- the ISSUE's oracle matrix: >=50 edits x 4 seeds x threads {1,8}
// ---- x shards {1,4}, byte-identical each step.

TEST(Incremental, OracleThreads1) {
  for (unsigned seed : {1u, 2u, 3u, 4u}) runWorkspaceOracle(seed, 1, 50);
}

TEST(Incremental, OracleThreads8) {
  for (unsigned seed : {1u, 2u, 3u, 4u}) runWorkspaceOracle(seed, 8, 50);
}

TEST(Incremental, OracleServer1Shard) {
  for (unsigned seed : {11u, 12u, 13u, 14u})
    runServerOracle(seed, 1, 1, 1, 50);
}

TEST(Incremental, OracleServer4Shards) {
  for (unsigned seed : {21u, 22u, 23u, 24u})
    runServerOracle(seed, 4, 8, 3, 50);
}

// ---- telemetry: the fast path is actually taken -----------------------

TEST(Incremental, FastPathEngagesOnPlainMove) {
  workload::GeneratedChip chip = makeChip(5);
  const tech::Technology t = tech::nmos();
  Workspace ws(chip.lib, t, {.threads = 1});
  ASSERT_TRUE(ws.run(CheckRequest::drc(chip.top)).ok());
  // Nudge one element of the block cell: kSet on a composite cell — the
  // cached view must patch (viewCacheHit) and the run must reuse cached
  // units (incrementalHit). NOTE: const access — the mutable cell()
  // overload conservatively invalidates all caches.
  const layout::Cell& blk = std::as_const(ws.library()).cell(chip.block);
  ASSERT_FALSE(blk.elements.empty());
  CheckRequest req = CheckRequest::drc(chip.top);
  req.edits.push_back(EditOp::setElement(
      chip.block, 0,
      blk.elements[0].transformed(geom::translate({50, 0}))));
  const CheckResult r = ws.run(req);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_TRUE(r.viewCacheHit);
  EXPECT_TRUE(r.incrementalHit);
  // A structural edit falls back: fresh view, cold (populating) run.
  CheckRequest req2 = CheckRequest::drc(chip.top);
  EditOp add;
  add.kind = EditOp::Kind::kAddElement;
  add.cell = chip.block;
  add.element = blk.elements[0];
  req2.edits.push_back(add);
  const CheckResult r2 = ws.run(req2);
  ASSERT_TRUE(r2.ok()) << r2.error;
  EXPECT_FALSE(r2.viewCacheHit);
  EXPECT_FALSE(r2.incrementalHit);
}

// ---- directed degenerate edits ----------------------------------------

/// A hand-built two-level library whose geometry the tests position
/// exactly: parent holds one metal probe element plus two leaf
/// instances; the leaf holds one metal box.
struct TinyFixture {
  layout::Library lib;
  layout::CellId leaf{0};
  layout::CellId parent{0};
  static constexpr int kMetal = 3;  // nmos(): ND,NP,NC,NM
  TinyFixture() {
    layout::Cell lc;
    lc.name = "leaf";
    lc.elements.push_back(
        layout::makeBox(kMetal, {{0, 0}, {1000, 1000}}));
    leaf = lib.addCell(std::move(lc));
    layout::Cell pc;
    pc.name = "parent";
    pc.elements.push_back(
        layout::makeBox(kMetal, {{-5000, 0}, {-4000, 1000}}));
    pc.instances.push_back({leaf, geom::translate({0, 0}), "a"});
    pc.instances.push_back({leaf, geom::translate({8000, 0}), "b"});
    parent = lib.addCell(std::move(pc));
  }
};

TEST(Incremental, DegenerateZeroAreaAndHaloExact) {
  const tech::Technology t = tech::nmos();
  const geom::Coord dmax = t.maxInteractionDistance();
  ASSERT_GT(dmax, 0);
  TinyFixture fx;
  Workspace served(fx.lib, t, {.threads = 1});
  Workspace oracle(fx.lib, t, {.threads = 1});
  ASSERT_TRUE(served.run(CheckRequest::drc(fx.parent)).ok());

  const auto step = [&](const geom::Rect& r, const std::string& what) {
    const EditOp edit = EditOp::setElement(
        fx.parent, 0, layout::makeBox(TinyFixture::kMetal, r));
    CheckRequest req = CheckRequest::drc(fx.parent);
    req.edits.push_back(edit);
    const CheckResult inc = served.run(req);
    const CheckResult cold = oracleCheck(oracle, fx.parent, edit);
    expectSameResult(inc, cold, what);
  };

  // Zero-area (zero-width) probe rect.
  step({{-5000, 0}, {-5000, 1000}}, "zero-width");
  // Zero-area point rect.
  step({{-5000, 0}, {-5000, 0}}, "point");
  // Probe gap to leaf instance "a" (bbox x in [0,1000]) EXACTLY dmax:
  // the halo-boundary case the conservative closed-touch affectedness
  // test must classify identically to the oracle.
  step({{-dmax - 1000, 0}, {-dmax, 1000}}, "gap == dmax");
  // One unit outside the halo.
  step({{-dmax - 1001, 0}, {-dmax - 1, 1000}}, "gap == dmax+1");
  // One unit inside.
  step({{-dmax - 999, 0}, {-dmax + 1, 1000}}, "gap == dmax-1");
  // Touching (gap 0).
  step({{-1000, 0}, {0, 1000}}, "touching");
}

TEST(Incremental, EditEmptyCellAndStructuralFallback) {
  const tech::Technology t = tech::nmos();
  TinyFixture fx;
  // An initially empty cell instantiated by the parent.
  layout::Cell ec;
  ec.name = "empty";
  const layout::CellId empty = fx.lib.addCell(std::move(ec));
  {
    layout::Cell pc = fx.lib.cell(fx.parent);
    pc.instances.push_back({empty, geom::translate({4000, 0}), "e"});
    fx.lib.cell(fx.parent) = std::move(pc);
  }
  Workspace served(fx.lib, t, {.threads = 1});
  Workspace oracle(fx.lib, t, {.threads = 1});
  ASSERT_TRUE(served.run(CheckRequest::drc(fx.parent)).ok());

  const auto step = [&](const EditOp& edit, const std::string& what) {
    CheckRequest req = CheckRequest::drc(fx.parent);
    req.edits.push_back(edit);
    const CheckResult inc = served.run(req);
    const CheckResult cold = oracleCheck(oracle, fx.parent, edit);
    expectSameResult(inc, cold, what);
  };

  // Populate the empty cell (structural; falls back to rebuild)...
  EditOp add;
  add.kind = EditOp::Kind::kAddElement;
  add.cell = empty;
  add.element =
      layout::makeBox(TinyFixture::kMetal, {{0, 0}, {800, 800}});
  step(add, "add-to-empty");
  // ...then edit the newly added element in place (fast path).
  step(EditOp::setElement(
           empty, 0,
           layout::makeBox(TinyFixture::kMetal, {{100, 100}, {900, 900}})),
       "set-in-formerly-empty");
  // ...and empty it again.
  EditOp rm;
  rm.kind = EditOp::Kind::kRemoveElement;
  rm.cell = empty;
  rm.index = 0;
  step(rm, "remove-back-to-empty");
}

TEST(Incremental, EditThenDropLibrary) {
  server::ServerOptions opts;
  opts.shards = 2;
  server::Server srv(opts);
  const tech::Technology t = tech::nmos();
  workload::GeneratedChip chip = makeChip(7);
  ASSERT_TRUE(srv.addLibrary("lib", chip.lib, t));
  CheckRequest req = CheckRequest::drc(chip.top);
  const layout::Cell& blk = std::as_const(chip.lib).cell(chip.block);
  req.edits.push_back(EditOp::setElement(
      chip.block, 0,
      blk.elements[0].transformed(geom::translate({50, 50}))));
  ASSERT_TRUE(srv.submit("lib", CheckRequest::drc(chip.top)).get().ok());
  ASSERT_TRUE(srv.submit("lib", req).get().ok());
  // Drop while the edited state (patched view + incremental cache) is
  // live; a subsequent submit must fail cleanly...
  ASSERT_TRUE(srv.dropLibrary("lib"));
  EXPECT_FALSE(srv.submit("lib", CheckRequest::drc(chip.top)).get().ok());
  // ...and a re-registered pristine copy must serve from scratch,
  // including another edit-then-check round.
  ASSERT_TRUE(srv.addLibrary("lib", chip.lib, t));
  ASSERT_TRUE(srv.submit("lib", CheckRequest::drc(chip.top)).get().ok());
  const CheckResult again = srv.submit("lib", req).get();
  ASSERT_TRUE(again.ok()) << again.error;
}

}  // namespace
}  // namespace dic
