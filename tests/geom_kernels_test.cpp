// Differential tests for the vectorized geometry kernels (PR 6): every
// SoA/branchless path must produce BYTE-IDENTICAL output to its retained
// scalar oracle, across deterministic randomized seed sweeps that
// include the degenerate shapes the masks have to get right -- touching
// rects (closed boundaries), zero-area slivers, negative coordinates.
// Plus unit tests for the engine::Arena bump allocator the checkers
// route their scratch through (reset, alignment, stack discipline, byte
// accounting).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <random>
#include <thread>
#include <vector>

#include "engine/arena.hpp"
#include "engine/hierarchy_view.hpp"
#include "geom/region.hpp"
#include "geom/spacing.hpp"
#include "geom/width.hpp"

namespace dic {
namespace {

using geom::Coord;
using geom::Rect;
using geom::Region;

/// Random rects with the nasty cases mixed in: ~1/8 are zero-width or
/// zero-height slivers, coordinates span negative space, and the value
/// range is small enough that exact touches and duplicates occur often.
std::vector<Rect> fuzzRects(std::mt19937& rng, std::size_t n, Coord window,
                            Coord maxSide) {
  std::uniform_int_distribution<Coord> pos(-window, window);
  std::uniform_int_distribution<Coord> side(0, maxSide);  // 0 => degenerate
  std::vector<Rect> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Coord x = pos(rng), y = pos(rng);
    out.push_back({{x, y}, {x + side(rng), y + side(rng)}});
  }
  return out;
}

/// A region big enough to take the SoA path (>= 32 rects survive the
/// union): disjoint jittered tiles around (ox, oy).
Region tiledRegion(std::mt19937& rng, std::size_t tiles, Coord ox, Coord oy) {
  std::uniform_int_distribution<Coord> side(3, 9);
  std::vector<Rect> rs;
  rs.reserve(tiles);
  for (std::size_t i = 0; i < tiles; ++i) {
    const Coord x = ox + static_cast<Coord>(i % 8) * 10;
    const Coord y = oy + static_cast<Coord>(i / 8) * 10;
    rs.push_back({{x, y}, {x + side(rng), y + side(rng)}});
  }
  return Region::fromRects(rs);
}

// --- booleanSweep vs booleanSweepScalar --------------------------------------

TEST(GeomKernelsDiff, BooleanSweepSeedSweepAllOps) {
  for (std::uint32_t seed = 1; seed <= 20; ++seed) {
    std::mt19937 rng(seed);
    const std::vector<Rect> a = fuzzRects(rng, 60, 50, 12);
    const std::vector<Rect> b = fuzzRects(rng, 60, 50, 12);
    for (const geom::BoolOp op :
         {geom::BoolOp::kOr, geom::BoolOp::kAnd, geom::BoolOp::kSub,
          geom::BoolOp::kXor}) {
      const std::vector<Rect> fast = geom::booleanSweep(a, b, op);
      const std::vector<Rect> ref = geom::booleanSweepScalar(a, b, op);
      ASSERT_EQ(fast, ref) << "op=" << static_cast<int>(op)
                           << " seed=" << seed;
    }
  }
}

TEST(GeomKernelsDiff, BooleanSweepDegenerateEdgeCases) {
  // Exactly touching columns, duplicate rects, zero-area inputs.
  const std::vector<Rect> a = {{{0, 0}, {10, 10}},
                               {{10, 0}, {20, 10}},   // shares edge x=10
                               {{0, 10}, {20, 20}},   // shares edge y=10
                               {{5, 5}, {5, 15}},     // zero width
                               {{-30, -30}, {-30, -30}},  // zero area
                               {{0, 0}, {10, 10}}};   // duplicate
  const std::vector<Rect> b = {{{-20, -20}, {0, 0}},  // corner-touches a
                               {{20, 0}, {30, 10}},
                               {{5, -5}, {15, 5}}};
  for (const geom::BoolOp op :
       {geom::BoolOp::kOr, geom::BoolOp::kAnd, geom::BoolOp::kSub,
        geom::BoolOp::kXor})
    EXPECT_EQ(geom::booleanSweep(a, b, op), geom::booleanSweepScalar(a, b, op))
        << "op=" << static_cast<int>(op);
}

// --- checkSpacing / distanceBelow vs scalar ----------------------------------

TEST(GeomKernelsDiff, CheckSpacingSeedSweepBothMetrics) {
  for (std::uint32_t seed = 1; seed <= 12; ++seed) {
    std::mt19937 rng(seed);
    // 64 tiles -> the SoA path; offset straddles the spacing threshold.
    const Region a = tiledRegion(rng, 64, 0, 0);
    const Region b = tiledRegion(rng, 64, 80 + static_cast<Coord>(seed), 3);
    for (const geom::Metric m :
         {geom::Metric::kEuclidean, geom::Metric::kOrthogonal}) {
      for (const Coord minSpacing : {Coord{0}, Coord{5}, Coord{30}}) {
        const auto fast = geom::checkSpacing(a, b, minSpacing, m);
        const auto ref = geom::checkSpacingScalar(a, b, minSpacing, m);
        ASSERT_EQ(fast.size(), ref.size())
            << "seed=" << seed << " metric=" << static_cast<int>(m)
            << " s=" << minSpacing;
        for (std::size_t i = 0; i < fast.size(); ++i) {
          EXPECT_EQ(fast[i].a, ref[i].a);
          EXPECT_EQ(fast[i].b, ref[i].b);
          // Bit-exact double: same formula on the same integer gaps.
          EXPECT_EQ(fast[i].measured, ref[i].measured);
        }
      }
    }
  }
}

TEST(GeomKernelsDiff, CheckSpacingSmallRegionFallback) {
  // Below the SoA threshold the kernel short-circuits to the scalar
  // walk; identity must hold there too (it IS the scalar walk).
  const Region a(Rect{{0, 0}, {10, 10}});
  const Region b(Rect{{13, 0}, {20, 10}});
  const auto fast = geom::checkSpacing(a, b, 5, geom::Metric::kEuclidean);
  const auto ref = geom::checkSpacingScalar(a, b, 5, geom::Metric::kEuclidean);
  ASSERT_EQ(fast.size(), ref.size());
  ASSERT_EQ(fast.size(), 1u);
  EXPECT_EQ(fast[0].measured, 3.0);
}

TEST(GeomKernelsDiff, DistanceBelowSeedSweepBothMetrics) {
  for (std::uint32_t seed = 1; seed <= 12; ++seed) {
    std::mt19937 rng(seed);
    const Region a = tiledRegion(rng, 48, 0, 0);
    const Region b = tiledRegion(rng, 48, 60 + static_cast<Coord>(seed) * 3,
                                 -20);
    for (const geom::Metric m :
         {geom::Metric::kEuclidean, geom::Metric::kOrthogonal}) {
      for (const Coord bound : {Coord{0}, Coord{1}, Coord{10}, Coord{500}}) {
        const auto fast = geom::distanceBelow(a, b, bound, m);
        const auto ref = geom::distanceBelowScalar(a, b, bound, m);
        ASSERT_EQ(fast, ref) << "seed=" << seed
                             << " metric=" << static_cast<int>(m)
                             << " bound=" << bound;
      }
    }
  }
}

TEST(GeomKernelsDiff, DistanceBelowTouchingRegionsIsZero) {
  std::mt19937 rng(99);
  const Region a = tiledRegion(rng, 64, 0, 0);
  // Shares the closed boundary with a's first tile column.
  Region b = unite(tiledRegion(rng, 64, -90, 0), Region(Rect{{-5, 0}, {0, 5}}));
  const auto fast =
      geom::distanceBelow(a, b, 10, geom::Metric::kEuclidean);
  const auto ref =
      geom::distanceBelowScalar(a, b, 10, geom::Metric::kEuclidean);
  ASSERT_EQ(fast, ref);
  ASSERT_TRUE(fast.has_value());
  EXPECT_EQ(*fast, 0.0);
}

// --- checkWidthEdges vs scalar -----------------------------------------------

TEST(GeomKernelsDiff, CheckWidthEdgesSeedSweep) {
  for (std::uint32_t seed = 1; seed <= 15; ++seed) {
    std::mt19937 rng(seed);
    // Overlapping random rects produce staircase boundaries with narrow
    // necks; the union keeps the region connected enough to be
    // interesting.
    const Region r = Region::fromRects(fuzzRects(rng, 40, 30, 15));
    for (const Coord minWidth : {Coord{2}, Coord{4}, Coord{9}}) {
      const auto fast = geom::checkWidthEdges(r, minWidth);
      const auto ref = geom::checkWidthEdgesScalar(r, minWidth);
      ASSERT_EQ(fast, ref) << "seed=" << seed << " w=" << minWidth;
    }
  }
}

// --- regionsTouch vs scalar --------------------------------------------------

TEST(GeomKernelsDiff, RegionsTouchSeedSweep) {
  for (std::uint32_t seed = 1; seed <= 20; ++seed) {
    std::mt19937 rng(seed);
    const Region a = tiledRegion(rng, 40, 0, 0);  // 40x40 > SoA threshold
    // Offsets chosen so roughly half the seeds touch (tile pitch 10).
    const Coord off = 70 + static_cast<Coord>(seed % 10);
    const Region b = tiledRegion(rng, 40, off, 2);
    EXPECT_EQ(geom::regionsTouch(a, b), geom::regionsTouchScalar(a, b))
        << "seed=" << seed;
    EXPECT_EQ(geom::regionsTouch(b, a), geom::regionsTouchScalar(b, a))
        << "seed=" << seed;
  }
}

TEST(GeomKernelsDiff, RegionsTouchClosedBoundary) {
  // Closed-touch semantics: sharing a single edge or corner counts.
  const Region a(Rect{{0, 0}, {10, 10}});
  EXPECT_TRUE(geom::regionsTouch(a, Region(Rect{{10, 0}, {20, 10}})));
  EXPECT_TRUE(geom::regionsTouch(a, Region(Rect{{10, 10}, {20, 20}})));
  EXPECT_FALSE(geom::regionsTouch(a, Region(Rect{{11, 0}, {20, 10}})));
  EXPECT_EQ(geom::regionsTouch(a, Region(Rect{{10, 0}, {20, 10}})),
            geom::regionsTouchScalar(a, Region(Rect{{10, 0}, {20, 10}})));
}

// --- pairsWithin vs scalar ---------------------------------------------------

TEST(GeomKernelsDiff, PairsWithinSeedSweep) {
  for (std::uint32_t seed = 1; seed <= 10; ++seed) {
    std::mt19937 rng(seed);
    const std::vector<Rect> boxes = fuzzRects(rng, 300, 200, 25);
    for (const Coord dist : {Coord{0}, Coord{1}, Coord{15}}) {
      const auto fast = engine::pairsWithin(boxes, dist);
      const auto ref = engine::pairsWithinScalar(boxes, dist);
      ASSERT_EQ(fast, ref) << "seed=" << seed << " dist=" << dist;
    }
  }
}

TEST(GeomKernelsDiff, PairsWithinDuplicatesAndTouching) {
  // Duplicated boxes, exact closed touches, and a box spanning many grid
  // cells (the raw-query dedup path).
  const std::vector<Rect> boxes = {{{0, 0}, {10, 10}},
                                   {{0, 0}, {10, 10}},      // duplicate
                                   {{10, 0}, {20, 10}},     // touching
                                   {{-500, -500}, {500, 500}},  // huge
                                   {{30, 30}, {30, 30}},    // zero-area
                                   {{31, 31}, {35, 35}}};
  for (const Coord dist : {Coord{0}, Coord{1}, Coord{100}})
    EXPECT_EQ(engine::pairsWithin(boxes, dist),
              engine::pairsWithinScalar(boxes, dist))
        << "dist=" << dist;
}

TEST(GeomKernelsDiff, ConcurrentSoAPublicationIsSafeAndStable) {
  // The SoA/edges views publish lazily via compare-exchange: racing
  // builders must agree on one winner and identical kernel output. This
  // is the geometry layer's only cross-thread surface (run under TSan
  // in CI).
  for (std::uint32_t seed = 1; seed <= 4; ++seed) {
    std::mt19937 rng(seed);
    const Region a = tiledRegion(rng, 64, 0, 0);
    const Region b = tiledRegion(rng, 64, 85, 0);
    const auto ref = geom::checkSpacingScalar(a, b, 20, geom::Metric::kEuclidean);
    std::vector<std::thread> workers;
    std::vector<const Region::SoA*> seen(8, nullptr);
    std::atomic<int> mismatches{0};
    for (int t = 0; t < 8; ++t) {
      workers.emplace_back([&, t] {
        seen[static_cast<std::size_t>(t)] = &b.soa();
        (void)a.edges();
        const auto fast = geom::checkSpacing(a, b, 20, geom::Metric::kEuclidean);
        if (fast.size() != ref.size()) mismatches.fetch_add(1);
      });
    }
    for (std::thread& w : workers) w.join();
    EXPECT_EQ(mismatches.load(), 0);
    for (int t = 1; t < 8; ++t)
      EXPECT_EQ(seen[static_cast<std::size_t>(t)], seen[0])
          << "racing builders must publish one SoA view";
  }
}

// --- engine::Arena -----------------------------------------------------------

TEST(Arena, AlignmentAndBasicAllocation) {
  engine::Arena arena(1024);
  for (const std::size_t align : {std::size_t{1}, std::size_t{2},
                                  std::size_t{8}, std::size_t{16},
                                  std::size_t{64}}) {
    void* p = arena.allocate(13, align);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u)
        << "align=" << align;
  }
  double* d = arena.allocateArray<double>(7);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(d) % alignof(double), 0u);
}

TEST(Arena, ResetRetainsBlocksAndZerosUsed) {
  engine::Arena arena(1024);
  arena.allocate(900);
  arena.allocate(900);  // forces a second block
  const std::size_t reserved = arena.reservedBytes();
  const std::size_t blocks = arena.blockCount();
  EXPECT_GE(arena.usedBytes(), 1800u);
  EXPECT_GE(blocks, 2u);

  arena.reset();
  EXPECT_EQ(arena.usedBytes(), 0u);
  EXPECT_EQ(arena.reservedBytes(), reserved);  // high-water pool retained
  EXPECT_EQ(arena.blockCount(), blocks);

  // Refilling to the same level must not grow the pool.
  arena.allocate(900);
  arena.allocate(900);
  EXPECT_EQ(arena.reservedBytes(), reserved);
  EXPECT_EQ(arena.blockCount(), blocks);
}

TEST(Arena, MarkReleaseStackDiscipline) {
  engine::Arena arena(1024);
  arena.allocate(100);
  const std::size_t before = arena.usedBytes();
  const engine::Arena::Mark m = arena.mark();
  arena.allocate(300);
  arena.allocate(200);
  EXPECT_GT(arena.usedBytes(), before);
  arena.release(m);
  EXPECT_EQ(arena.usedBytes(), before);

  // ArenaScope is the RAII form of the same discipline.
  {
    engine::ArenaScope scope(arena);
    arena.allocate(512);
    EXPECT_GT(arena.usedBytes(), before);
  }
  EXPECT_EQ(arena.usedBytes(), before);
}

TEST(Arena, OversizedAllocationGetsDedicatedBlock) {
  engine::Arena arena(256);
  void* p = arena.allocate(10000);
  ASSERT_NE(p, nullptr);
  EXPECT_GE(arena.reservedBytes(), 10000u);
}

TEST(Arena, TotalReservedBytesAccounting) {
  const std::size_t before = engine::Arena::totalReservedBytes();
  {
    engine::Arena arena(4096);
    arena.allocate(100);  // reserves the first block lazily
    EXPECT_GE(engine::Arena::totalReservedBytes(), before + 4096);
  }
  // Destruction returns the arena's blocks to the process-wide count.
  EXPECT_EQ(engine::Arena::totalReservedBytes(), before);
}

TEST(Arena, ArenaVectorRoundTrip) {
  engine::Arena arena;
  engine::ArenaScope scope(arena);
  engine::ArenaVector<int> v{engine::ArenaAllocator<int>(arena)};
  for (int i = 0; i < 1000; ++i) v.push_back(i * 3);
  ASSERT_EQ(v.size(), 1000u);
  EXPECT_EQ(v[999], 2997);
  EXPECT_GT(arena.usedBytes(), 0u);
}

TEST(Arena, ScratchArenaIsPerThreadAndReusable) {
  engine::Arena& a = engine::scratchArena();
  engine::Arena& b = engine::scratchArena();
  EXPECT_EQ(&a, &b);  // same thread -> same arena
  const engine::Arena::Mark m = a.mark();
  a.allocate(64);
  a.release(m);
}

}  // namespace
}  // namespace dic
