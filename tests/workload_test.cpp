// Tests for the synthetic chip generator and the spatial index: the
// workload must be clean by construction across its parameter space, and
// its coordinate bookkeeping must match the actual geometry.
#include <gtest/gtest.h>

#include <random>

#include "drc/checker.hpp"
#include "erc/erc.hpp"
#include "geom/spatial.hpp"
#include "structured/structured.hpp"
#include "workload/generator.hpp"
#include "workload/inject.hpp"

namespace dic {
namespace {

TEST(GridIndex, FindsOnlyNearbyCandidates) {
  geom::GridIndex idx(1000);
  idx.insert(0, geom::makeRect(0, 0, 100, 100));
  idx.insert(1, geom::makeRect(5000, 5000, 5100, 5100));
  idx.insert(2, geom::makeRect(-900, -900, -800, -800));
  const auto near0 = idx.query(geom::makeRect(50, 50, 200, 200));
  EXPECT_NE(std::find(near0.begin(), near0.end(), 0u), near0.end());
  EXPECT_EQ(std::find(near0.begin(), near0.end(), 1u), near0.end());
}

TEST(GridIndex, NeverMissesPairs) {
  // Property: every truly-overlapping pair must be produced as a
  // candidate (no false negatives; false positives are fine).
  std::mt19937 rng(99);
  std::uniform_int_distribution<geom::Coord> c(-20000, 20000), s(1, 3000);
  std::vector<geom::Rect> rects;
  geom::GridIndex idx(2048);
  for (int i = 0; i < 300; ++i) {
    const geom::Coord x = c(rng), y = c(rng);
    rects.push_back(geom::makeRect(x, y, x + s(rng), y + s(rng)));
    idx.insert(i, rects.back());
  }
  for (std::size_t i = 0; i < rects.size(); ++i) {
    const auto cand = idx.query(rects[i]);
    for (std::size_t j = 0; j < rects.size(); ++j) {
      if (i == j || !geom::closedTouch(rects[i], rects[j])) continue;
      EXPECT_NE(std::find(cand.begin(), cand.end(), j), cand.end())
          << i << " vs " << j;
    }
  }
}

class GeneratorSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(GeneratorSweep, ChipIsCleanByConstruction) {
  const auto [br, bc, ir, ic] = GetParam();
  const tech::Technology t = tech::nmos();
  workload::GeneratedChip chip = workload::generateChip(
      t, {.blockRows = br, .blockCols = bc, .invRows = ir, .invCols = ic,
          .withPads = true});
  drc::Checker checker(chip.lib, chip.top, t, {});
  report::Report rep = checker.run();
  rep.merge(erc::check(checker.generateNetlist(), t));
  rep.merge(structured::checkImplicitDevices(chip.lib, chip.top, t));
  rep.merge(structured::checkSelfSufficiency(chip.lib, chip.top, t));
  EXPECT_TRUE(rep.empty()) << br << "x" << bc << "/" << ir << "x" << ic
                           << "\n" << rep.text();
}

INSTANTIATE_TEST_SUITE_P(
    Params, GeneratorSweep,
    ::testing::Values(std::make_tuple(1, 1, 2, 2), std::make_tuple(1, 2, 2, 2),
                      std::make_tuple(2, 1, 2, 3), std::make_tuple(1, 1, 3, 2),
                      std::make_tuple(2, 2, 2, 4),
                      std::make_tuple(1, 3, 4, 2)));

TEST(Generator, CoordinateBookkeepingMatchesGeometry) {
  const tech::Technology t = tech::nmos();
  workload::GeneratedChip chip = workload::generateChip(
      t, {.blockRows = 2, .blockCols = 2, .invRows = 2, .invCols = 3,
          .withPads = false});
  // The bus rect handle must coincide with an actual metal element.
  const geom::Rect bus = chip.busRect(1, 1, 0);
  std::vector<layout::FlatElement> fe;
  std::vector<layout::FlatDevice> fd;
  chip.lib.flatten(chip.top, fe, fd, false);
  bool found = false;
  for (const auto& e : fe)
    if (e.element.bbox() == bus) found = true;
  EXPECT_TRUE(found) << geom::toString(bus);
  // Inverter origins step by the pitch.
  EXPECT_EQ(chip.inverterOrigin(0, 0, 0, 1).x -
                chip.inverterOrigin(0, 0, 0, 0).x,
            chip.invPitchX);
  EXPECT_EQ(chip.inverterOrigin(0, 0, 1, 0).y -
                chip.inverterOrigin(0, 0, 0, 0).y,
            chip.invPitchY);
}

TEST(Injector, EveryPlanLineProducesItsTruths) {
  const tech::Technology t = tech::nmos();
  workload::GeneratedChip chip = workload::generateChip(
      t, {.blockRows = 2, .blockCols = 2, .invRows = 2, .invCols = 3,
          .withPads = true});
  workload::InjectionPlan plan;
  plan.spacingViolations = 3;
  plan.widthViolations = 2;
  plan.sameNetDecoys = 5;
  plan.accidentalFets = 1;
  plan.contactsOverGate = 1;
  plan.buttingHalves = 2;
  plan.powerGroundShorts = 1;
  plan.floatingNets = 2;
  const auto truths = workload::inject(chip, t, plan, 17);
  EXPECT_EQ(truths.size(), 17u);
  std::size_t real = 0, decoy = 0;
  for (const auto& g : truths) (g.isRealError ? real : decoy)++;
  EXPECT_EQ(real, 12u);
  EXPECT_EQ(decoy, 5u);
}

TEST(Injector, DifferentSeedsDifferentSites) {
  const tech::Technology t = tech::nmos();
  workload::GeneratedChip a = workload::generateChip(
      t, {.blockRows = 2, .blockCols = 2, .invRows = 2, .invCols = 3,
          .withPads = false});
  workload::GeneratedChip b = workload::generateChip(
      t, {.blockRows = 2, .blockCols = 2, .invRows = 2, .invCols = 3,
          .withPads = false});
  workload::InjectionPlan plan;
  const auto ta = workload::inject(a, t, plan, 1);
  const auto tb = workload::inject(b, t, plan, 2);
  ASSERT_EQ(ta.size(), tb.size());
  bool anyDifferent = false;
  for (std::size_t i = 0; i < ta.size(); ++i)
    if (!(ta[i].where == tb[i].where)) anyDifferent = true;
  EXPECT_TRUE(anyDifferent);
}

TEST(Locality, BlockWiringEscapesInverterArray) {
  // The block's rails/buses span the whole block: measurable but bounded
  // escape; the structured-design "locality" metric sees it.
  const tech::Technology t = tech::nmos();
  workload::GeneratedChip chip = workload::generateChip(
      t, {.blockRows = 1, .blockCols = 1, .invRows = 2, .invCols = 3,
          .withPads = false});
  const auto stats = structured::measureLocality(chip.lib, chip.top);
  EXPECT_GE(stats.cells, 3u);
  EXPECT_GE(stats.meanEscape, 0.0);
}

}  // namespace
}  // namespace dic
